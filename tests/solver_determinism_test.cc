// Copyright (c) Medea reproduction authors.
// Regression test for basis-independent branch and bound: on the exact
// size/seed grid of the solver micro-benchmark (BENCH_solver_micro.json),
// the cold (dense per-node) and warm-started (incremental dual simplex)
// configurations must agree on status and objective AND explore the same
// number of branch-and-bound nodes. Before the deterministic branching
// perturbation (MipOptions::branching_perturbation) the two solvers would
// land on different vertices of the degenerate node LPs' optimal faces,
// branch differently, and explore trees of wildly different size (the
// historical 12x6 seeds 3/11 explosion: warm 275/435 nodes vs cold 13/89).

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "src/solver/mip.h"
#include "src/solver/testing/placement_model.h"

namespace medea::solver {
namespace {

MipOptions ExactOptions(bool incremental) {
  MipOptions options;
  options.time_limit_seconds = 0.0;  // run to completion
  options.relative_gap = 0.0;
  options.absolute_gap = 1e-9;
  options.use_incremental_lp = incremental;
  return options;
}

TEST(SolverDeterminismTest, WarmAndColdExploreIdenticalTrees) {
  for (const auto& [containers, nodes] : testing::MicroBenchSizes()) {
    for (const uint64_t seed : testing::MicroBenchSeeds()) {
      const Model m = testing::PlacementModel(containers, nodes, seed);
      const std::string label = std::to_string(containers) + "x" +
                                std::to_string(nodes) + " seed " +
                                std::to_string(seed);

      MipStats cold_stats, warm_stats;
      const Solution cold = SolveMip(m, ExactOptions(false), &cold_stats);
      const Solution warm = SolveMip(m, ExactOptions(true), &warm_stats);

      EXPECT_EQ(cold.status, warm.status) << label;
      ASSERT_EQ(cold.status, SolveStatus::kOptimal) << label;
      EXPECT_NEAR(cold.objective, warm.objective, 1e-6) << label;
      // The load-bearing assertion: identical branching decisions in both
      // modes, hence identical trees. Without the perturbation this diverges
      // by an order of magnitude on the degenerate seeds.
      EXPECT_EQ(cold_stats.nodes_explored, warm_stats.nodes_explored) << label;
      EXPECT_FALSE(cold_stats.hit_time_limit) << label;
      EXPECT_FALSE(warm_stats.hit_time_limit) << label;
    }
  }
}

TEST(SolverDeterminismTest, DeterministicModeReproducesSerialTreeAtAnyThreadCount) {
  // MipOptions::deterministic trades all parallel speedup for bit-for-bit
  // reproducibility: with it set, num_threads > 1 must explore EXACTLY the
  // serial tree (same node count, same objective), not merely an equivalent
  // one. This is the contract docs/solver.md sells, so lock it down on a few
  // degenerate instances.
  for (const uint64_t seed : testing::MicroBenchSeeds()) {
    const Model m = testing::PlacementModel(12, 6, seed);

    MipStats serial_stats;
    const Solution serial = SolveMip(m, ExactOptions(true), &serial_stats);
    ASSERT_EQ(serial.status, SolveStatus::kOptimal) << seed;

    for (const int threads : {2, 4, 8}) {
      MipOptions options = ExactOptions(true);
      options.num_threads = threads;
      options.deterministic = true;
      MipStats stats;
      const Solution repro = SolveMip(m, options, &stats);
      ASSERT_EQ(repro.status, SolveStatus::kOptimal) << seed << " threads " << threads;
      EXPECT_NEAR(repro.objective, serial.objective, 1e-9)
          << seed << " threads " << threads;
      EXPECT_EQ(stats.nodes_explored, serial_stats.nodes_explored)
          << seed << " threads " << threads;
      EXPECT_EQ(stats.total_pivots, serial_stats.total_pivots)
          << seed << " threads " << threads;
      // Deterministic mode runs the serial engine: one "worker", no steals.
      EXPECT_EQ(stats.threads_used, 1) << seed << " threads " << threads;
      EXPECT_EQ(stats.steals, 0) << seed << " threads " << threads;
      EXPECT_TRUE(stats.per_worker.empty()) << seed << " threads " << threads;
    }
  }
}

TEST(SolverDeterminismTest, PerturbationOffStillSolvesCorrectly) {
  // Sanity: disabling the perturbation must not change reported optima (only
  // tree shapes), so the slack-adjusted pruning bound is not cutting off the
  // true optimum.
  for (const uint64_t seed : testing::MicroBenchSeeds()) {
    const Model m = testing::PlacementModel(12, 6, seed);
    MipOptions plain = ExactOptions(true);
    plain.branching_perturbation = 0.0;
    const Solution unperturbed = SolveMip(m, plain);
    const Solution perturbed = SolveMip(m, ExactOptions(true));
    ASSERT_EQ(unperturbed.status, SolveStatus::kOptimal) << seed;
    ASSERT_EQ(perturbed.status, SolveStatus::kOptimal) << seed;
    EXPECT_NEAR(unperturbed.objective, perturbed.objective, 1e-6) << seed;
  }
}

}  // namespace
}  // namespace medea::solver
