// Integration tests: the full two-scheduler pipeline end to end, scheduler
// quality comparisons on randomized workloads (property-style), commit
// conflicts and resubmission, and solver warm-start/gap behaviour through
// the scheduler layer.

#include <gtest/gtest.h>

#include <memory>

#include "src/schedulers/greedy.h"
#include "src/schedulers/ilp_scheduler.h"
#include "src/schedulers/jkube.h"
#include "src/schedulers/yarn.h"
#include "src/sim/simulation.h"
#include "src/workload/gridmix.h"
#include "src/workload/lra_templates.h"

namespace medea {
namespace {

SchedulerConfig TestConfig() {
  SchedulerConfig config;
  config.node_pool_size = 32;
  config.candidates_per_container = 16;
  config.ilp_time_limit_seconds = 2.0;
  return config;
}

// Deploys HBase instances through a scheduler; returns violation fraction.
double DeployAndMeasure(LraScheduler& scheduler, int instances, uint64_t seed) {
  ClusterState state = ClusterBuilder()
                           .NumNodes(40)
                           .NumRacks(5)
                           .NumUpgradeDomains(5)
                           .NumServiceUnits(5)
                           .NodeCapacity(Resource(16 * 1024, 8))
                           .Build();
  ConstraintManager manager(state.groups_ptr());
  Rng rng(seed);
  std::vector<std::string> shared_seen;
  for (int i = 0; i < instances; ++i) {
    LraSpec spec =
        MakeHBaseInstance(ApplicationId(static_cast<uint32_t>(i + 1)), manager.tags(), 6);
    for (const auto& text : spec.shared_constraints) {
      if (std::find(shared_seen.begin(), shared_seen.end(), text) == shared_seen.end()) {
        shared_seen.push_back(text);
        EXPECT_TRUE(manager.AddFromText(text, ConstraintOrigin::kOperator).ok());
      }
    }
    for (const auto& text : spec.app_constraints) {
      EXPECT_TRUE(
          manager.AddFromText(text, ConstraintOrigin::kApplication, spec.request.app).ok());
    }
    PlacementProblem problem;
    problem.lras = {spec.request};
    problem.state = &state;
    problem.manager = &manager;
    const auto plan = scheduler.Place(problem);
    CommitPlan(problem, plan, state);
  }
  return ConstraintEvaluator::EvaluateAll(state, manager).ViolationFraction();
}

TEST(IntegrationTest, IlpNoWorseThanYarnOnViolations) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    SchedulerConfig config = TestConfig();
    config.seed = seed;
    MedeaIlpScheduler ilp(config);
    YarnScheduler yarn(config);
    const double ilp_violations = DeployAndMeasure(ilp, 6, seed);
    const double yarn_violations = DeployAndMeasure(yarn, 6, seed);
    EXPECT_LE(ilp_violations, yarn_violations + 1e-9) << "seed " << seed;
  }
}

TEST(IntegrationTest, IlpNearZeroViolationsModerateLoad) {
  MedeaIlpScheduler ilp(TestConfig());
  EXPECT_LE(DeployAndMeasure(ilp, 6, 42), 0.05);
}

TEST(IntegrationTest, GreedyPlansAreCapacityValid) {
  // Property: greedy plans never over-subscribe a node, across random
  // demand mixes.
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    ClusterState state = ClusterBuilder()
                             .NumNodes(8)
                             .NumRacks(2)
                             .NumUpgradeDomains(2)
                             .NumServiceUnits(2)
                             .NodeCapacity(Resource(8 * 1024, 4))
                             .Build();
    ConstraintManager manager(state.groups_ptr());
    PlacementProblem problem;
    std::vector<LraRequest> lras;
    for (uint32_t a = 0; a < 3; ++a) {
      LraRequest lra;
      lra.app = ApplicationId(a + 1);
      const int n = static_cast<int>(rng.NextInt(1, 6));
      for (int c = 0; c < n; ++c) {
        lra.containers.push_back(ContainerRequest{
            Resource(rng.NextInt(512, 4096), static_cast<int32_t>(rng.NextInt(1, 2))),
            manager.tags().InternAll({"w"})});
      }
      lras.push_back(std::move(lra));
    }
    problem.lras = lras;
    problem.state = &state;
    problem.manager = &manager;
    GreedyScheduler greedy(GreedyOrdering::kSerial, TestConfig());
    const auto plan = greedy.Place(problem);
    // Committing must succeed: the plan respected capacities.
    EXPECT_TRUE(CommitPlan(problem, plan, state)) << "trial " << trial;
  }
}

TEST(IntegrationTest, CommitConflictTriggersResubmission) {
  // Force a §5.4 placement conflict: the LRA plan is computed, then task
  // containers grab the resources before commit. The simulator must
  // resubmit and eventually place the LRA.
  SimConfig config;
  config.num_nodes = 4;
  config.num_racks = 2;
  config.num_upgrade_domains = 2;
  config.num_service_units = 2;
  config.node_capacity = Resource(4 * 1024, 4);
  config.max_lra_attempts = 5;

  // A scheduler wrapper that plans against a stale snapshot: it plans, then
  // the test fills the cluster between plan and commit by submitting tasks
  // with an earlier timestamp... simpler: plan onto node 0 always.
  class PinnedScheduler : public LraScheduler {
   public:
    PlacementPlan Place(const PlacementProblem& problem) override {
      PlacementPlan plan;
      plan.lra_placed.assign(problem.lras.size(), true);
      for (size_t i = 0; i < problem.lras.size(); ++i) {
        for (size_t j = 0; j < problem.lras[i].containers.size(); ++j) {
          // Attempt 1 goes to the (soon to be full) node 0; later attempts
          // spread by attempt count.
          plan.assignments.push_back(
              {static_cast<int>(i), static_cast<int>(j),
               NodeId(static_cast<uint32_t>((attempt_ + j) % 4))});
        }
      }
      ++attempt_;
      return plan;
    }
    std::string name() const override { return "pinned"; }

   private:
    uint32_t attempt_ = 0;
  };

  Simulation sim(config, std::make_unique<PinnedScheduler>());
  // Fill node 0 completely with a long task before the LRA cycle fires.
  sim.SubmitTaskJobAt(0, {TaskRequest{Resource(4 * 1024, 4), 600000}});
  sim.SubmitLraAt(100, MakeGenericLra(ApplicationId(1), sim.manager().tags(), 2, "svc",
                                      Resource(2048, 2)));
  sim.RunUntilQuiescent();
  EXPECT_TRUE(sim.IsPlaced(ApplicationId(1)));
  EXPECT_GE(sim.metrics().commit_conflicts, 1);
  EXPECT_GE(sim.metrics().lra_resubmissions, 1);
}

TEST(IntegrationTest, FullPipelineWithAllSchedulers) {
  // Smoke: every scheduler drives the simulator end to end with a mixed
  // workload and leaves consistent state.
  const char* names[] = {"ilp", "nc", "tp", "serial", "jkube", "jkubepp", "yarn"};
  for (const char* name : names) {
    SimConfig config;
    config.num_nodes = 24;
    config.num_racks = 4;
    config.num_upgrade_domains = 4;
    config.num_service_units = 4;
    std::unique_ptr<LraScheduler> scheduler;
    const std::string which = name;
    SchedulerConfig sc = TestConfig();
    if (which == "ilp") {
      scheduler = std::make_unique<MedeaIlpScheduler>(sc);
    } else if (which == "nc") {
      scheduler = std::make_unique<GreedyScheduler>(GreedyOrdering::kNodeCandidates, sc);
    } else if (which == "tp") {
      scheduler = std::make_unique<GreedyScheduler>(GreedyOrdering::kTagPopularity, sc);
    } else if (which == "serial") {
      scheduler = std::make_unique<GreedyScheduler>(GreedyOrdering::kSerial, sc);
    } else if (which == "jkube") {
      scheduler = std::make_unique<JKubeScheduler>(false, sc);
    } else if (which == "jkubepp") {
      scheduler = std::make_unique<JKubeScheduler>(true, sc);
    } else {
      scheduler = std::make_unique<YarnScheduler>(sc);
    }
    Simulation sim(config, std::move(scheduler));
    GridMixGenerator gridmix(GridMixConfig{}, 3);
    sim.SubmitTaskJobAt(0, gridmix.NextJob());
    sim.SubmitLraAt(0, MakeHBaseInstance(ApplicationId(1), sim.manager().tags(), 4));
    sim.SubmitLraAt(5000, MakeTensorFlowInstance(ApplicationId(2), sim.manager().tags(), 4, 1));
    sim.RunUntil(60000);
    EXPECT_TRUE(sim.IsPlaced(ApplicationId(1))) << name;
    EXPECT_TRUE(sim.IsPlaced(ApplicationId(2))) << name;
    // Consistency: used resources equal the sum of container demands.
    Resource sum;
    sim.state().ForEachContainer([&](const ContainerInfo& info) { sum += info.resource; });
    EXPECT_EQ(sum, sim.state().TotalUsed()) << name;
  }
}

TEST(IntegrationTest, IlpWarmStartNeverWorseThanGreedyAlone) {
  // Property: the ILP (which seeds from the Serial greedy) must never end
  // with more weighted violations than the greedy it started from.
  for (uint64_t seed : {11u, 12u, 13u}) {
    SchedulerConfig config = TestConfig();
    config.seed = seed;
    MedeaIlpScheduler ilp(config);
    GreedyScheduler greedy(GreedyOrdering::kSerial, config, /*impact_aware=*/true);
    const double ilp_v = DeployAndMeasure(ilp, 5, seed);
    const double greedy_v = DeployAndMeasure(greedy, 5, seed);
    EXPECT_LE(ilp_v, greedy_v + 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace medea
