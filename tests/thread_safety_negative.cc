// Copyright (c) Medea reproduction authors.
// NEGATIVE compile test: this translation unit must FAIL to compile under
//   clang++ -std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety -I<repo>
// because `Broken::Bump` writes a MEDEA_GUARDED_BY(mu_) field without
// holding the mutex. CMake registers it (Clang builds only) as a WILL_FAIL
// ctest; if the thread-safety gate ever silently stops working, this test
// starts "passing" to the compiler and the ctest run goes red.
//
// It is NOT part of any library or normal target, and on GCC (annotations
// are no-ops there) it compiles cleanly — which is exactly why the gate
// must run on Clang.

#include "src/common/sync/mutex.h"

namespace medea::sync {

class Broken {
 public:
  void Bump() {
    ++counter_;  // error: writing variable 'counter_' requires holding mutex 'mu_'
  }

 private:
  Mutex mu_;
  int counter_ MEDEA_GUARDED_BY(mu_) = 0;
};

inline void Use() {
  Broken broken;
  broken.Bump();
}

}  // namespace medea::sync
