// Tests for the from-scratch LP/MIP solver: textbook LPs, bound handling,
// infeasibility/unboundedness detection, knapsack/assignment MIPs, and
// randomized property tests cross-checked against brute force.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/solver/mip.h"
#include "src/solver/model.h"
#include "src/solver/simplex.h"

namespace medea::solver {
namespace {

TEST(LpTest, TextbookTwoVariable) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> (4,0), obj 12.
  Model m;
  const int x = m.AddContinuous(0, kInfinity, 3, "x");
  const int y = m.AddContinuous(0, kInfinity, 2, "y");
  m.AddRow({{x, 1}, {y, 1}}, RowSense::kLessEqual, 4);
  m.AddRow({{x, 1}, {y, 3}}, RowSense::kLessEqual, 6);
  const Solution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-6);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 4.0, 1e-6);
  EXPECT_NEAR(s.values[static_cast<size_t>(y)], 0.0, 1e-6);
}

TEST(LpTest, MinimizationWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 10, x <= 6 -> x=6, y=4, obj 24.
  Model m;
  m.SetMaximize(false);
  const int x = m.AddContinuous(0, 6, 2, "x");
  const int y = m.AddContinuous(0, kInfinity, 3, "y");
  m.AddRow({{x, 1}, {y, 1}}, RowSense::kGreaterEqual, 10);
  const Solution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 24.0, 1e-6);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 6.0, 1e-6);
  EXPECT_NEAR(s.values[static_cast<size_t>(y)], 4.0, 1e-6);
}

TEST(LpTest, EqualityRow) {
  // max x + y s.t. x + y = 5, x <= 2 -> obj 5.
  Model m;
  const int x = m.AddContinuous(0, 2, 1, "x");
  const int y = m.AddContinuous(0, kInfinity, 1, "y");
  m.AddRow({{x, 1}, {y, 1}}, RowSense::kEqual, 5);
  const Solution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-6);
  EXPECT_NEAR(s.values[0] + s.values[1], 5.0, 1e-6);
}

TEST(LpTest, InfeasibleDetected) {
  Model m;
  const int x = m.AddContinuous(0, 1, 1, "x");
  m.AddRow({{x, 1}}, RowSense::kGreaterEqual, 2);
  EXPECT_EQ(SolveLp(m).status, SolveStatus::kInfeasible);
}

TEST(LpTest, InfeasibleContradictoryRows) {
  Model m;
  const int x = m.AddContinuous(0, kInfinity, 1, "x");
  const int y = m.AddContinuous(0, kInfinity, 1, "y");
  m.AddRow({{x, 1}, {y, 1}}, RowSense::kLessEqual, 1);
  m.AddRow({{x, 1}, {y, 1}}, RowSense::kGreaterEqual, 3);
  EXPECT_EQ(SolveLp(m).status, SolveStatus::kInfeasible);
}

TEST(LpTest, UnboundedDetected) {
  Model m;
  const int x = m.AddContinuous(0, kInfinity, 1, "x");
  const int y = m.AddContinuous(0, kInfinity, 0, "y");
  m.AddRow({{x, 1}, {y, -1}}, RowSense::kLessEqual, 1);
  EXPECT_EQ(SolveLp(m).status, SolveStatus::kUnbounded);
}

TEST(LpTest, NoRowsUsesBounds) {
  Model m;
  const int x = m.AddContinuous(1, 3, 2, "x");
  const int y = m.AddContinuous(-2, 5, -1, "y");
  const Solution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 3.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<size_t>(y)], -2.0, 1e-9);
}

TEST(LpTest, NegativeLowerBounds) {
  // max x s.t. x + y <= 0, y >= -3 -> x = 3.
  Model m;
  const int x = m.AddContinuous(0, kInfinity, 1, "x");
  const int y = m.AddContinuous(-3, kInfinity, 0, "y");
  m.AddRow({{x, 1}, {y, 1}}, RowSense::kLessEqual, 0);
  const Solution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-6);
}

TEST(LpTest, BoundFlipPath) {
  // Optimum forces a variable to its upper bound without pivoting.
  Model m;
  const int x = m.AddContinuous(0, 2, 5, "x");
  const int y = m.AddContinuous(0, 2, 1, "y");
  m.AddRow({{x, 1}, {y, 1}}, RowSense::kLessEqual, 10);  // slack basis stays
  const Solution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-6);
}

TEST(LpTest, DegenerateProblemTerminates) {
  // Many redundant rows through the same vertex.
  Model m;
  const int x = m.AddContinuous(0, kInfinity, 1, "x");
  const int y = m.AddContinuous(0, kInfinity, 1, "y");
  for (int i = 0; i < 20; ++i) {
    m.AddRow({{x, 1.0 + i * 1e-9}, {y, 1.0}}, RowSense::kLessEqual, 1.0);
  }
  const Solution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-5);
}

TEST(MipTest, SimpleKnapsack) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (binary) -> 16.
  Model m;
  m.AddBinary(10, "a");
  m.AddBinary(6, "b");
  m.AddBinary(4, "c");
  m.AddRow({{0, 1}, {1, 1}, {2, 1}}, RowSense::kLessEqual, 2);
  const Solution s = SolveMip(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 16.0, 1e-6);
  EXPECT_NEAR(s.values[0], 1.0, 1e-6);
  EXPECT_NEAR(s.values[1], 1.0, 1e-6);
  EXPECT_NEAR(s.values[2], 0.0, 1e-6);
}

TEST(MipTest, WeightedKnapsackNeedsBranching) {
  // Classic: LP relaxation is fractional. max 60x1+100x2+120x3,
  // 10x1+20x2+30x3 <= 50, binary -> 220 (x2=x3=1).
  Model m;
  m.AddBinary(60);
  m.AddBinary(100);
  m.AddBinary(120);
  m.AddRow({{0, 10}, {1, 20}, {2, 30}}, RowSense::kLessEqual, 50);
  const Solution s = SolveMip(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 220.0, 1e-6);
}

TEST(MipTest, GeneralIntegerVariable) {
  // max 7x + 2y s.t. 3x + y <= 10, x,y integer >= 0 -> x=3, y=1 -> 23.
  Model m;
  const int x = m.AddVariable(0, kInfinity, 7, VarType::kInteger, "x");
  const int y = m.AddVariable(0, kInfinity, 2, VarType::kInteger, "y");
  m.AddRow({{x, 3}, {y, 1}}, RowSense::kLessEqual, 10);
  const Solution s = SolveMip(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 23.0, 1e-6);
}

TEST(MipTest, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6, x binary -> infeasible.
  Model m;
  const int x = m.AddBinary(1);
  m.AddRow({{x, 1}}, RowSense::kGreaterEqual, 0.4);
  m.AddRow({{x, 1}}, RowSense::kLessEqual, 0.6);
  EXPECT_EQ(SolveMip(m).status, SolveStatus::kInfeasible);
}

TEST(MipTest, AssignmentProblemIsIntegral) {
  // 3x3 assignment: every agent to exactly one task. Costs chosen so the
  // optimum is the diagonal.
  Model m;
  m.SetMaximize(false);
  const double cost[3][3] = {{1, 5, 5}, {5, 1, 5}, {5, 5, 1}};
  int v[3][3];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      v[i][j] = m.AddBinary(cost[i][j]);
    }
  }
  for (int i = 0; i < 3; ++i) {
    m.AddRow({{v[i][0], 1}, {v[i][1], 1}, {v[i][2], 1}}, RowSense::kEqual, 1);
    m.AddRow({{v[0][i], 1}, {v[1][i], 1}, {v[2][i], 1}}, RowSense::kEqual, 1);
  }
  const Solution s = SolveMip(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-6);
}

TEST(MipTest, StatsPopulated) {
  Model m;
  m.AddBinary(60);
  m.AddBinary(100);
  m.AddBinary(120);
  m.AddRow({{0, 10}, {1, 20}, {2, 30}}, RowSense::kLessEqual, 50);
  MipStats stats;
  const Solution s = SolveMip(m, MipOptions(), &stats);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_GE(stats.nodes_explored, 1);
  EXPECT_GE(stats.lp_solves, stats.nodes_explored);
}

TEST(MipTest, TimeLimitReturnsIncumbent) {
  // A larger knapsack with a tiny budget still yields a feasible solution.
  Model m;
  Rng rng(5);
  std::vector<std::pair<int, double>> terms;
  for (int i = 0; i < 40; ++i) {
    const int v = m.AddBinary(rng.NextDouble(1, 100));
    terms.emplace_back(v, rng.NextDouble(1, 50));
  }
  m.AddRow(terms, RowSense::kLessEqual, 200);
  MipOptions opts;
  opts.time_limit_seconds = 0.05;
  const Solution s = SolveMip(m, opts);
  EXPECT_TRUE(s.HasSolution());
  EXPECT_TRUE(m.IsFeasible(s.values, 1e-6));
}

TEST(ModelTest, RowTermMerging) {
  Model m;
  const int x = m.AddContinuous(0, 1, 1, "x");
  const int r = m.AddRow({{x, 1}, {x, 2}, {x, -3}}, RowSense::kLessEqual, 5);
  EXPECT_TRUE(m.row(r).terms.empty());  // coefficients cancel
}

TEST(ModelTest, FeasibilityChecker) {
  Model m;
  const int x = m.AddBinary(1, "x");
  m.AddRow({{x, 1}}, RowSense::kLessEqual, 0.5);
  std::string why;
  EXPECT_TRUE(m.IsFeasible({0.0}, 1e-9));
  EXPECT_FALSE(m.IsFeasible({1.0}, 1e-9, &why));
  EXPECT_FALSE(m.IsFeasible({0.5}, 1e-9, &why));  // not integral
  EXPECT_FALSE(m.IsFeasible({-1.0}, 1e-9, &why));
}

// ---- Property tests ---------------------------------------------------------

// Random small binary MIPs cross-checked against exhaustive enumeration.
class RandomMipProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomMipProperty, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  const int n = static_cast<int>(rng.NextInt(3, 10));
  const int rows = static_cast<int>(rng.NextInt(1, 6));
  Model m;
  std::vector<double> obj(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    obj[static_cast<size_t>(j)] = rng.NextDouble(-10, 10);
    m.AddBinary(obj[static_cast<size_t>(j)]);
  }
  struct RawRow {
    std::vector<double> coeffs;
    RowSense sense;
    double rhs;
  };
  std::vector<RawRow> raw;
  for (int r = 0; r < rows; ++r) {
    RawRow row;
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < n; ++j) {
      const double c = rng.NextBool(0.7) ? rng.NextDouble(-5, 5) : 0.0;
      row.coeffs.push_back(c);
      if (c != 0.0) {
        terms.emplace_back(j, c);
      }
    }
    const int sense_pick = static_cast<int>(rng.NextInt(0, 2));
    row.sense = sense_pick == 0   ? RowSense::kLessEqual
                : sense_pick == 1 ? RowSense::kGreaterEqual
                                  : RowSense::kEqual;
    // Make equality rows achievable by pinning them to a random point.
    if (row.sense == RowSense::kEqual) {
      double lhs = 0.0;
      for (int j = 0; j < n; ++j) {
        lhs += row.coeffs[static_cast<size_t>(j)] * (rng.NextBool(0.5) ? 1.0 : 0.0);
      }
      row.rhs = lhs;
    } else {
      row.rhs = rng.NextDouble(-6, 8);
    }
    raw.push_back(row);
    m.AddRow(terms, row.sense, row.rhs);
  }

  // Brute force over all 2^n assignments.
  bool any_feasible = false;
  double best = -1e300;
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool ok = true;
    for (const RawRow& row : raw) {
      double lhs = 0.0;
      for (int j = 0; j < n; ++j) {
        if ((mask >> j) & 1) {
          lhs += row.coeffs[static_cast<size_t>(j)];
        }
      }
      const bool sat = row.sense == RowSense::kLessEqual      ? lhs <= row.rhs + 1e-9
                       : row.sense == RowSense::kGreaterEqual ? lhs >= row.rhs - 1e-9
                                                              : std::fabs(lhs - row.rhs) <= 1e-9;
      if (!sat) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      continue;
    }
    any_feasible = true;
    double value = 0.0;
    for (int j = 0; j < n; ++j) {
      if ((mask >> j) & 1) {
        value += obj[static_cast<size_t>(j)];
      }
    }
    best = std::max(best, value);
  }

  const Solution s = SolveMip(m);
  if (!any_feasible) {
    EXPECT_EQ(s.status, SolveStatus::kInfeasible);
  } else {
    ASSERT_EQ(s.status, SolveStatus::kOptimal) << "case " << GetParam();
    EXPECT_NEAR(s.objective, best, 1e-5) << "case " << GetParam();
    EXPECT_TRUE(m.IsFeasible(s.values, 1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomMipProperty, ::testing::Range(0, 40));

// Random LPs: verify the simplex solution is feasible and at least as good
// as a sample of random feasible points (local optimality evidence).
class RandomLpProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpProperty, FeasibleAndDominatesRandomPoints) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  const int n = static_cast<int>(rng.NextInt(2, 8));
  const int rows = static_cast<int>(rng.NextInt(1, 5));
  Model m;
  for (int j = 0; j < n; ++j) {
    m.AddContinuous(0, rng.NextDouble(0.5, 5.0), rng.NextDouble(-5, 5));
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.NextBool(0.8)) {
        terms.emplace_back(j, rng.NextDouble(0.1, 3.0));  // positive -> feasible at 0
      }
    }
    m.AddRow(terms, RowSense::kLessEqual, rng.NextDouble(1, 10));
  }
  const Solution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_TRUE(m.IsFeasible(s.values, 1e-6));
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> x(static_cast<size_t>(n));
    for (int j = 0; j < n; ++j) {
      x[static_cast<size_t>(j)] = rng.NextDouble(0, m.column(j).upper);
    }
    if (m.IsFeasible(x, 1e-9)) {
      EXPECT_LE(m.Objective(x), s.objective + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomLpProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace medea::solver
