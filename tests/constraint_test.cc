// Tests for src/core: tags, constraint construction, the constraint DSL
// parser, and the constraint manager (validation + conflict resolution).

#include <gtest/gtest.h>

#include <memory>

#include "src/cluster/node_group.h"
#include "src/core/constraint.h"
#include "src/core/constraint_manager.h"
#include "src/core/constraint_parser.h"
#include "src/core/tags.h"

namespace medea {
namespace {

std::shared_ptr<NodeGroupRegistry> TestGroups() {
  auto groups = std::make_shared<NodeGroupRegistry>(8);
  EXPECT_TRUE(groups->RegisterPartition(kNodeGroupRack, {0, 0, 0, 0, 1, 1, 1, 1}).ok());
  EXPECT_TRUE(groups->RegisterPartition(kNodeGroupUpgradeDomain, {0, 1, 2, 3, 0, 1, 2, 3}).ok());
  return groups;
}

TEST(TagPoolTest, InternIsIdempotent) {
  TagPool pool;
  const TagId a = pool.Intern("hb");
  const TagId b = pool.Intern("hb");
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Name(a), "hb");
}

TEST(TagPoolTest, FindUnknownReturnsInvalid) {
  TagPool pool;
  EXPECT_FALSE(pool.Find("nope").IsValid());
}

TEST(TagPoolTest, AppIdTagNamespaced) {
  TagPool pool;
  const TagId t = pool.AppIdTag(ApplicationId(23));
  EXPECT_EQ(pool.Name(t), "appID:23");
}

TEST(TagExpressionTest, SortedDeduplicated) {
  TagPool pool;
  const TagId a = pool.Intern("a");
  const TagId b = pool.Intern("b");
  const TagExpression e({b, a, b});
  EXPECT_EQ(e.size(), 2u);
  EXPECT_TRUE(e.Contains(a));
  EXPECT_TRUE(e.Contains(b));
  EXPECT_EQ(e, TagExpression({a, b}));
}

TEST(TagExpressionTest, MatchedBySemantics) {
  TagPool pool;
  const TagId hb = pool.Intern("hb");
  const TagId mem = pool.Intern("mem");
  const TagExpression conj({hb, mem});
  const std::vector<TagId> both = {hb, mem, pool.Intern("x")};
  const std::vector<TagId> one = {hb};
  EXPECT_TRUE(conj.MatchedBy(both));
  EXPECT_FALSE(conj.MatchedBy(one));
  // The empty expression matches nothing (constraints need a subject).
  EXPECT_FALSE(TagExpression().MatchedBy(both));
}

TEST(ConstraintBuildersTest, AffinityShape) {
  TagPool pool;
  const auto c = MakeAffinity(TagExpression({pool.Intern("storm")}),
                              TagExpression({pool.Intern("hb"), pool.Intern("mem")}),
                              kNodeGroupNode);
  ASSERT_TRUE(c.IsSimple());
  const TagConstraint& tc = c.clauses[0][0].targets[0];
  EXPECT_TRUE(tc.IsAffinity());
  EXPECT_EQ(tc.cmin, 1);
  EXPECT_EQ(tc.cmax, kCardinalityInfinity);
}

TEST(ConstraintBuildersTest, AntiAffinityShape) {
  TagPool pool;
  const auto c = MakeAntiAffinity(TagExpression({pool.Intern("storm")}),
                                  TagExpression({pool.Intern("hb")}), kNodeGroupUpgradeDomain);
  const TagConstraint& tc = c.clauses[0][0].targets[0];
  EXPECT_TRUE(tc.IsAntiAffinity());
  EXPECT_EQ(tc.cmin, 0);
  EXPECT_EQ(tc.cmax, 0);
}

TEST(ParserTest, PaperExampleAffinity) {
  TagPool pool;
  auto c = ParseConstraint("{storm, {hb & mem, 1, inf}, node}", pool);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c->IsSimple());
  const AtomicConstraint& atomic = c->clauses[0][0];
  EXPECT_EQ(atomic.node_group, "node");
  EXPECT_EQ(atomic.subject.ToString(pool), "storm");
  EXPECT_EQ(atomic.targets[0].c_tags.ToString(pool), "hb & mem");
  EXPECT_TRUE(atomic.targets[0].IsAffinity());
}

TEST(ParserTest, PaperExampleCardinality) {
  TagPool pool;
  auto c = ParseConstraint("{storm, {spark, 0, 5}, rack}", pool);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->clauses[0][0].targets[0].cmin, 0);
  EXPECT_EQ(c->clauses[0][0].targets[0].cmax, 5);
}

TEST(ParserTest, NamespacedTags) {
  TagPool pool;
  auto c = ParseConstraint("{appID:0023 & storm, {appID:0023 & hb & mem, 1, inf}, node}", pool);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->clauses[0][0].subject.size(), 2u);
  EXPECT_EQ(c->clauses[0][0].targets[0].c_tags.size(), 3u);
}

TEST(ParserTest, ConjunctionOfTagConstraints) {
  TagPool pool;
  auto c = ParseConstraint("{storm, {hb, 1, inf} && {mem, 1, inf}, node}", pool);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c->clauses[0][0].targets.size(), 2u);
  EXPECT_TRUE(c->clauses[0][0].targets[0].IsAffinity());
  EXPECT_TRUE(c->clauses[0][0].targets[1].IsAffinity());
}

TEST(ParserTest, ClauseConjunctionOfAtomics) {
  TagPool pool;
  auto c = ParseConstraint("{hb_m, {hb_sec, 0, 0}, node} && {hb_m, {thrift, 1, inf}, node}", pool);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c->clauses.size(), 1u);
  ASSERT_EQ(c->clauses[0].size(), 2u);
}

TEST(ParserTest, DnfDisjunction) {
  TagPool pool;
  auto c = ParseConstraint("{spark, {spark, 3, 10}, rack} || {spark, {spark, 0, 0}, node}", pool);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c->clauses.size(), 2u);
  EXPECT_FALSE(c->IsSimple());
}

TEST(ParserTest, WeightSuffix) {
  TagPool pool;
  auto c = ParseConstraint("{storm, {hb, 0, 0}, rack} #2.5", pool);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c->weight, 2.5);
}

TEST(ParserTest, RoundTripToString) {
  TagPool pool;
  const std::string text = "{storm, {hb & mem, 1, inf}, node}";
  auto c = ParseConstraint(text, pool);
  ASSERT_TRUE(c.ok());
  auto again = ParseConstraint(c->ToString(pool), pool);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToString(pool), c->ToString(pool));
}

TEST(ParserTest, Malformed) {
  TagPool pool;
  EXPECT_FALSE(ParseConstraint("", pool).ok());
  EXPECT_FALSE(ParseConstraint("{storm}", pool).ok());
  EXPECT_FALSE(ParseConstraint("{storm, {hb, 1}, node}", pool).ok());
  EXPECT_FALSE(ParseConstraint("{storm, {hb, x, 2}, node}", pool).ok());
  EXPECT_FALSE(ParseConstraint("{storm, {hb, 5, 2}, node}", pool).ok());
  EXPECT_FALSE(ParseConstraint("{storm, {hb, 1, inf}, }", pool).ok());
  EXPECT_FALSE(ParseConstraint("{storm, {hb, 1, inf}, node", pool).ok());
  EXPECT_FALSE(ParseConstraint("{storm, {hb, 1, inf}, node} #-1", pool).ok());
  EXPECT_FALSE(ParseConstraint("{st orm, {hb, 1, inf}, node}", pool).ok());
}

TEST(ConstraintManagerTest, AddValidatesGroupKind) {
  ConstraintManager manager(TestGroups());
  auto c = manager.AddFromText("{a, {b, 0, 0}, rack}", ConstraintOrigin::kApplication,
                               ApplicationId(1));
  EXPECT_TRUE(c.ok());
  auto bad = manager.AddFromText("{a, {b, 0, 0}, nonexistent_group}",
                                 ConstraintOrigin::kApplication, ApplicationId(1));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConstraintManagerTest, ApplicationConstraintNeedsOwner) {
  ConstraintManager manager(TestGroups());
  auto bad = manager.AddFromText("{a, {b, 0, 0}, rack}", ConstraintOrigin::kApplication);
  EXPECT_FALSE(bad.ok());
  auto op = manager.AddFromText("{a, {b, 0, 0}, rack}", ConstraintOrigin::kOperator);
  EXPECT_TRUE(op.ok());
}

TEST(ConstraintManagerTest, RemoveAndFind) {
  ConstraintManager manager(TestGroups());
  auto id = manager.AddFromText("{a, {b, 0, 0}, rack}", ConstraintOrigin::kOperator);
  ASSERT_TRUE(id.ok());
  EXPECT_NE(manager.Find(*id), nullptr);
  EXPECT_TRUE(manager.Remove(*id).ok());
  EXPECT_EQ(manager.Find(*id), nullptr);
  EXPECT_EQ(manager.Remove(*id).code(), StatusCode::kNotFound);
}

TEST(ConstraintManagerTest, RemoveApplicationConstraints) {
  ConstraintManager manager(TestGroups());
  ASSERT_TRUE(manager
                  .AddFromText("{a, {b, 0, 0}, rack}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  ASSERT_TRUE(manager
                  .AddFromText("{c, {d, 1, inf}, node}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  ASSERT_TRUE(manager.AddFromText("{e, {f, 0, 3}, rack}", ConstraintOrigin::kOperator).ok());
  EXPECT_EQ(manager.RemoveApplicationConstraints(ApplicationId(1)), 2);
  EXPECT_EQ(manager.size(), 1u);
}

TEST(ConstraintManagerTest, OperatorOverridesMoreRestrictive) {
  ConstraintManager manager(TestGroups());
  // Application: at most 8 spark containers per rack.
  ASSERT_TRUE(manager
                  .AddFromText("{spark, {spark, 0, 8}, rack}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  // Operator: at most 5 — more restrictive, same subject/target/group.
  ASSERT_TRUE(
      manager.AddFromText("{spark, {spark, 0, 5}, rack}", ConstraintOrigin::kOperator).ok());
  const auto effective = manager.Effective();
  ASSERT_EQ(effective.size(), 1u);
  EXPECT_EQ(effective[0].second->origin, ConstraintOrigin::kOperator);
}

TEST(ConstraintManagerTest, OperatorDoesNotOverrideLessRestrictive) {
  ConstraintManager manager(TestGroups());
  ASSERT_TRUE(manager
                  .AddFromText("{spark, {spark, 0, 3}, rack}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  ASSERT_TRUE(
      manager.AddFromText("{spark, {spark, 0, 5}, rack}", ConstraintOrigin::kOperator).ok());
  EXPECT_EQ(manager.Effective().size(), 2u);
}

TEST(ConstraintManagerTest, DifferentGroupNoOverride) {
  ConstraintManager manager(TestGroups());
  ASSERT_TRUE(manager
                  .AddFromText("{spark, {spark, 0, 8}, rack}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  ASSERT_TRUE(
      manager.AddFromText("{spark, {spark, 0, 5}, node}", ConstraintOrigin::kOperator).ok());
  EXPECT_EQ(manager.Effective().size(), 2u);
}

}  // namespace
}  // namespace medea
