// Tests for src/cluster: node accounting, node groups, cluster state
// allocation/release, tag cardinality, and aggregate metrics.

#include <gtest/gtest.h>

#include "src/cluster/cluster_state.h"
#include "src/cluster/node.h"
#include "src/cluster/node_group.h"

namespace medea {
namespace {

ClusterState SmallCluster(size_t nodes = 8, size_t racks = 2) {
  return ClusterBuilder()
      .NumNodes(nodes)
      .NumRacks(racks)
      .NumUpgradeDomains(2)
      .NumServiceUnits(2)
      .NodeCapacity(Resource(16 * 1024, 8))
      .Build();
}

TEST(NodeGroupTest, ImplicitNodeKind) {
  NodeGroupRegistry groups(4);
  ASSERT_TRUE(groups.HasKind(kNodeGroupNode));
  EXPECT_EQ(groups.NumSets(kNodeGroupNode), 4u);
  const auto& sets = groups.SetsOf(kNodeGroupNode);
  EXPECT_EQ(sets[2], std::vector<NodeId>{NodeId(2)});
  EXPECT_EQ(groups.SetsContaining(kNodeGroupNode, NodeId(3)), std::vector<int>{3});
}

TEST(NodeGroupTest, RegisterPartition) {
  NodeGroupRegistry groups(6);
  ASSERT_TRUE(groups.RegisterPartition("rack", {0, 0, 0, 1, 1, 1}).ok());
  EXPECT_EQ(groups.NumSets("rack"), 2u);
  EXPECT_EQ(groups.SetsOf("rack")[1],
            (std::vector<NodeId>{NodeId(3), NodeId(4), NodeId(5)}));
  EXPECT_EQ(groups.SetsContaining("rack", NodeId(4)), std::vector<int>{1});
}

TEST(NodeGroupTest, OverlappingSetsAllowed) {
  NodeGroupRegistry groups(4);
  ASSERT_TRUE(groups
                  .RegisterKind("zone", {{NodeId(0), NodeId(1), NodeId(2)},
                                         {NodeId(2), NodeId(3)}})
                  .ok());
  EXPECT_EQ(groups.SetsContaining("zone", NodeId(2)), (std::vector<int>{0, 1}));
}

TEST(NodeGroupTest, DuplicateKindRejected) {
  NodeGroupRegistry groups(2);
  ASSERT_TRUE(groups.RegisterPartition("rack", {0, 1}).ok());
  EXPECT_EQ(groups.RegisterPartition("rack", {0, 0}).code(), StatusCode::kAlreadyExists);
}

TEST(NodeGroupTest, OutOfRangeNodeRejected) {
  NodeGroupRegistry groups(2);
  EXPECT_EQ(groups.RegisterKind("bad", {{NodeId(5)}}).code(), StatusCode::kInvalidArgument);
}

TEST(NodeGroupTest, UnknownKindQueries) {
  NodeGroupRegistry groups(2);
  EXPECT_FALSE(groups.HasKind("nope"));
  EXPECT_EQ(groups.NumSets("nope"), 0u);
  EXPECT_TRUE(groups.SetsContaining("nope", NodeId(0)).empty());
}

TEST(ClusterStateTest, AllocateAndRelease) {
  ClusterState state = SmallCluster();
  const Resource demand(2048, 1);
  auto c = state.Allocate(ApplicationId(1), NodeId(0), demand, {TagId(0)}, /*long_running=*/true);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(state.node(NodeId(0)).used(), demand);
  EXPECT_EQ(state.num_containers(), 1u);
  EXPECT_EQ(state.num_long_running_containers(), 1u);
  EXPECT_EQ(state.TagCardinality(NodeId(0), TagId(0)), 1);

  ASSERT_TRUE(state.Release(*c).ok());
  EXPECT_EQ(state.node(NodeId(0)).used(), Resource::Zero());
  EXPECT_EQ(state.TagCardinality(NodeId(0), TagId(0)), 0);
  EXPECT_EQ(state.num_containers(), 0u);
}

TEST(ClusterStateTest, AllocationRespectsCapacity) {
  ClusterState state = SmallCluster();
  const Resource big(16 * 1024, 8);
  ASSERT_TRUE(state.Allocate(ApplicationId(1), NodeId(0), big, {}, false).ok());
  auto overflow = state.Allocate(ApplicationId(1), NodeId(0), Resource(1, 0), {}, false);
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
}

TEST(ClusterStateTest, UnavailableNodeRejectsAllocations) {
  ClusterState state = SmallCluster();
  state.SetNodeAvailable(NodeId(2), false);
  auto result = state.Allocate(ApplicationId(1), NodeId(2), Resource(1, 1), {}, false);
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  state.SetNodeAvailable(NodeId(2), true);
  EXPECT_TRUE(state.Allocate(ApplicationId(1), NodeId(2), Resource(1, 1), {}, false).ok());
}

TEST(ClusterStateTest, ReleaseApplicationRemovesAll) {
  ClusterState state = SmallCluster();
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        state.Allocate(ApplicationId(9), NodeId(i % 2), Resource(1024, 1), {TagId(1)}, true)
            .ok());
  }
  ASSERT_TRUE(state.Allocate(ApplicationId(10), NodeId(0), Resource(1024, 1), {}, true).ok());
  EXPECT_EQ(state.ReleaseApplication(ApplicationId(9)), 4);
  EXPECT_EQ(state.num_containers(), 1u);
  EXPECT_TRUE(state.ContainersOf(ApplicationId(9)).empty());
  EXPECT_EQ(state.ContainersOf(ApplicationId(10)).size(), 1u);
}

TEST(ClusterStateTest, TagCardinalityMultiset) {
  ClusterState state = SmallCluster();
  const TagId hb(0);
  const TagId hb_m(1);
  const TagId hb_rs(2);
  // One master {hb, hb_m} and one region server {hb, hb_rs} on n1 (§4.1).
  ASSERT_TRUE(state.Allocate(ApplicationId(1), NodeId(1), Resource(1, 1), {hb, hb_m}, true).ok());
  ASSERT_TRUE(state.Allocate(ApplicationId(1), NodeId(1), Resource(1, 1), {hb, hb_rs}, true).ok());
  EXPECT_EQ(state.TagCardinality(NodeId(1), hb), 2);
  EXPECT_EQ(state.TagCardinality(NodeId(1), hb_m), 1);
  EXPECT_EQ(state.TagCardinality(NodeId(1), hb_rs), 1);
  EXPECT_EQ(state.TagCardinality(NodeId(0), hb), 0);
}

TEST(ClusterStateTest, ConjunctionCardinality) {
  ClusterState state = SmallCluster();
  const TagId hb(0);
  const TagId mem(1);
  const TagId other(2);
  ASSERT_TRUE(state.Allocate(ApplicationId(1), NodeId(0), Resource(1, 1), {hb, mem}, true).ok());
  ASSERT_TRUE(state.Allocate(ApplicationId(1), NodeId(0), Resource(1, 1), {hb}, true).ok());
  ASSERT_TRUE(state.Allocate(ApplicationId(1), NodeId(0), Resource(1, 1), {other}, true).ok());
  const TagId conj[] = {hb, mem};
  EXPECT_EQ(state.TagCardinality(NodeId(0), std::span<const TagId>(conj)), 1);
  const TagId single[] = {hb};
  EXPECT_EQ(state.TagCardinality(NodeId(0), std::span<const TagId>(single)), 2);
  EXPECT_EQ(state.TagCardinality(NodeId(0), std::span<const TagId>{}), 3);
}

TEST(ClusterStateTest, StaticTagsSatisfyConjunctions) {
  ClusterState state = SmallCluster();
  const TagId gpu(7);
  const TagId tf(8);
  state.AddStaticNodeTag(NodeId(3), gpu);
  ASSERT_TRUE(state.Allocate(ApplicationId(2), NodeId(3), Resource(1, 1), {tf}, true).ok());
  EXPECT_EQ(state.TagCardinality(NodeId(3), gpu), 1);
  const TagId conj[] = {tf, gpu};
  // The tf container counts because the node carries the static gpu tag.
  EXPECT_EQ(state.TagCardinality(NodeId(3), std::span<const TagId>(conj)), 1);
}

TEST(ClusterStateTest, SetCardinalitySumsOverRack) {
  ClusterState state = SmallCluster(8, 2);  // racks: nodes 0-3 and 4-7
  const TagId hb(0);
  ASSERT_TRUE(state.Allocate(ApplicationId(1), NodeId(0), Resource(1, 1), {hb}, true).ok());
  ASSERT_TRUE(state.Allocate(ApplicationId(1), NodeId(3), Resource(1, 1), {hb}, true).ok());
  ASSERT_TRUE(state.Allocate(ApplicationId(1), NodeId(4), Resource(1, 1), {hb}, true).ok());
  const auto& rack0 = state.groups().SetsOf(kNodeGroupRack)[0];
  const TagId conj[] = {hb};
  EXPECT_EQ(state.SetTagCardinality(rack0, std::span<const TagId>(conj)), 2);
}

TEST(ClusterStateTest, CopyIsIndependent) {
  ClusterState state = SmallCluster();
  ASSERT_TRUE(state.Allocate(ApplicationId(1), NodeId(0), Resource(1024, 1), {TagId(0)}, true)
                  .ok());
  ClusterState copy = state;
  ASSERT_TRUE(copy.Allocate(ApplicationId(2), NodeId(0), Resource(1024, 1), {TagId(0)}, true)
                  .ok());
  EXPECT_EQ(state.num_containers(), 1u);
  EXPECT_EQ(copy.num_containers(), 2u);
  EXPECT_EQ(state.TagCardinality(NodeId(0), TagId(0)), 1);
  EXPECT_EQ(copy.TagCardinality(NodeId(0), TagId(0)), 2);
}

TEST(ClusterStateTest, FragmentationMetric) {
  ClusterState state = SmallCluster(4, 1);
  // Node 0: fully used -> not fragmented. Node 1: nearly full -> fragmented.
  ASSERT_TRUE(state.Allocate(ApplicationId(1), NodeId(0), Resource(16 * 1024, 8), {}, false).ok());
  ASSERT_TRUE(
      state.Allocate(ApplicationId(1), NodeId(1), Resource(15 * 1024, 7), {}, false).ok());
  // Threshold from §7.4: < 2 GB or < 1 core free.
  const double frac = state.FragmentedNodeFraction(Resource(2048, 1));
  EXPECT_DOUBLE_EQ(frac, 0.25);
}

TEST(ClusterStateTest, UtilizationVector) {
  ClusterState state = SmallCluster(2, 1);
  ASSERT_TRUE(state.Allocate(ApplicationId(1), NodeId(0), Resource(8 * 1024, 4), {}, false).ok());
  const auto util = state.NodeMemoryUtilization();
  ASSERT_EQ(util.size(), 2u);
  EXPECT_DOUBLE_EQ(util[0], 0.5);
  EXPECT_DOUBLE_EQ(util[1], 0.0);
}

TEST(ClusterBuilderTest, PartitionsCoverAllNodes) {
  ClusterState state = ClusterBuilder().NumNodes(10).NumRacks(3).Build();
  size_t total = 0;
  for (const auto& rack : state.groups().SetsOf(kNodeGroupRack)) {
    total += rack.size();
  }
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(state.groups().NumSets(kNodeGroupRack), 3u);
}

}  // namespace
}  // namespace medea
