// Copyright (c) Medea reproduction authors.
// Unit tests for the component-decomposed solve path (src/solver/decompose.h):
// union-find component extraction on hand-written models, sub-model index
// mapping, stitched-solution correctness against the monolithic engine, the
// relax-and-round fast lane's accept/reject behavior (a rejected candidate
// must fall back to exact branch and bound), status propagation, and root
// reduced-cost fixing.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/solver/decompose.h"
#include "src/solver/mip.h"
#include "src/solver/model.h"
#include "src/solver/testing/placement_model.h"

namespace medea::solver {
namespace {

MipOptions ExactOptions() {
  MipOptions options;
  options.time_limit_seconds = 10.0;
  options.absolute_gap = 1e-9;
  options.relative_gap = 0.0;
  return options;
}

MipOptions DecomposeExact() {
  MipOptions options = ExactOptions();
  options.decompose = true;
  return options;
}

// --- DecomposeModel: union-find over the incidence graph --------------------

TEST(DecomposeModelTest, TwoIndependentBlocksSeparate) {
  Model m;
  const int a0 = m.AddBinary(1.0);
  const int a1 = m.AddBinary(2.0);
  const int b0 = m.AddBinary(3.0);
  const int b1 = m.AddBinary(4.0);
  m.AddRow({{a0, 1.0}, {a1, 1.0}}, RowSense::kLessEqual, 1.0);
  m.AddRow({{b0, 1.0}, {b1, 1.0}}, RowSense::kLessEqual, 1.0);
  m.AddRow({{b0, 2.0}}, RowSense::kLessEqual, 2.0);

  const Decomposition dec = DecomposeModel(m);
  ASSERT_EQ(dec.components.size(), 2u);
  EXPECT_TRUE(dec.constant_rows.empty());
  // Both components have 2 integers; the stable tie-break is row count, so
  // the b-block (2 rows) sorts first.
  EXPECT_EQ(dec.components[0].vars, (std::vector<VarIndex>{b0, b1}));
  EXPECT_EQ(dec.components[0].rows, (std::vector<RowIndex>{1, 2}));
  EXPECT_EQ(dec.components[0].num_integer, 2);
  EXPECT_EQ(dec.components[1].vars, (std::vector<VarIndex>{a0, a1}));
  EXPECT_EQ(dec.components[1].rows, (std::vector<RowIndex>{0}));
  // component_of_var is consistent with membership.
  EXPECT_EQ(dec.component_of_var[static_cast<size_t>(a0)], 1);
  EXPECT_EQ(dec.component_of_var[static_cast<size_t>(a1)], 1);
  EXPECT_EQ(dec.component_of_var[static_cast<size_t>(b0)], 0);
  EXPECT_EQ(dec.component_of_var[static_cast<size_t>(b1)], 0);
}

TEST(DecomposeModelTest, SharedRowGluesComponents) {
  Model m;
  const int x0 = m.AddBinary(1.0);
  const int x1 = m.AddBinary(1.0);
  const int x2 = m.AddBinary(1.0);
  m.AddRow({{x0, 1.0}, {x1, 1.0}}, RowSense::kLessEqual, 1.0);
  m.AddRow({{x1, 1.0}, {x2, 1.0}}, RowSense::kLessEqual, 1.0);

  const Decomposition dec = DecomposeModel(m);
  ASSERT_EQ(dec.components.size(), 1u);
  EXPECT_EQ(dec.components[0].vars, (std::vector<VarIndex>{x0, x1, x2}));
}

TEST(DecomposeModelTest, FixedVariableDoesNotGlueRows) {
  // x1 is fixed by its bounds, so the two rows sharing it stay independent
  // and the fixed column belongs to no component.
  Model m;
  const int x0 = m.AddBinary(1.0);
  const int x1 = m.AddVariable(2.0, 2.0, 1.0, VarType::kContinuous);
  const int x2 = m.AddBinary(1.0);
  m.AddRow({{x0, 1.0}, {x1, 1.0}}, RowSense::kLessEqual, 3.0);
  m.AddRow({{x1, 1.0}, {x2, 1.0}}, RowSense::kLessEqual, 3.0);

  const Decomposition dec = DecomposeModel(m);
  ASSERT_EQ(dec.components.size(), 2u);
  EXPECT_EQ(dec.component_of_var[static_cast<size_t>(x1)], -1);
  for (const Component& comp : dec.components) {
    EXPECT_EQ(comp.vars.size(), 1u);
    EXPECT_EQ(comp.rows.size(), 1u);
  }
}

TEST(DecomposeModelTest, AllFixedRowIsConstant) {
  Model m;
  const int x0 = m.AddVariable(1.0, 1.0, 5.0, VarType::kContinuous);
  const int x1 = m.AddBinary(1.0);
  m.AddRow({{x0, 2.0}}, RowSense::kLessEqual, 3.0);
  m.AddRow({{x1, 1.0}}, RowSense::kLessEqual, 1.0);

  const Decomposition dec = DecomposeModel(m);
  ASSERT_EQ(dec.components.size(), 1u);
  ASSERT_EQ(dec.constant_rows.size(), 1u);
  EXPECT_EQ(dec.constant_rows[0], 0);
  EXPECT_EQ(dec.components[0].vars, (std::vector<VarIndex>{x1}));
}

TEST(DecomposeModelTest, RowLessVariableIsItsOwnComponent) {
  Model m;
  const int x0 = m.AddBinary(1.0);
  const int free = m.AddContinuous(0.0, 4.0, 2.0);
  m.AddRow({{x0, 1.0}}, RowSense::kLessEqual, 1.0);

  const Decomposition dec = DecomposeModel(m);
  ASSERT_EQ(dec.components.size(), 2u);
  // x0 is the only integer, so it sorts first; the row-less continuous
  // component comes last.
  EXPECT_EQ(dec.components[0].vars, (std::vector<VarIndex>{x0}));
  EXPECT_EQ(dec.components[1].vars, (std::vector<VarIndex>{free}));
  EXPECT_TRUE(dec.components[1].rows.empty());
}

TEST(DecomposeModelTest, GeneratorBlockCountIsRecovered) {
  const Model m = testing::DecomposablePlacementModel(20, 10, 5, /*seed=*/3);
  const Decomposition dec = DecomposeModel(m);
  EXPECT_EQ(dec.components.size(), 5u);
  for (const Component& comp : dec.components) {
    EXPECT_EQ(comp.vars.size(), 8u);   // (20/5) containers x (10/5) nodes
    EXPECT_EQ(comp.num_integer, 8);
    EXPECT_EQ(comp.rows.size(), 8u);   // 4 <=1 rows + 2 nodes x 2 capacity rows
  }
}

// --- ExtractComponent: index mapping and fixed-term substitution ------------

TEST(ExtractComponentTest, MapsIndicesAndSubstitutesFixedTerms) {
  Model m;
  const int fixed = m.AddVariable(2.0, 2.0, 7.0, VarType::kContinuous);
  const int x0 = m.AddVariable(0.0, 3.0, 1.5, VarType::kInteger);
  const int x1 = m.AddContinuous(0.5, 4.0, -2.0);
  m.AddRow({{fixed, 3.0}, {x0, 1.0}, {x1, 2.0}}, RowSense::kLessEqual, 10.0);
  m.AddRow({{x0, 1.0}}, RowSense::kGreaterEqual, 1.0);

  const Decomposition dec = DecomposeModel(m);
  ASSERT_EQ(dec.components.size(), 1u);
  const Component& comp = dec.components[0];
  ASSERT_EQ(comp.vars, (std::vector<VarIndex>{x0, x1}));

  const Model sub = ExtractComponent(m, comp);
  ASSERT_EQ(sub.num_variables(), 2);
  ASSERT_EQ(sub.num_rows(), 2);
  // Local index i is comp.vars[i]: bounds, objective and type carry over.
  EXPECT_EQ(sub.column(0).lower, 0.0);
  EXPECT_EQ(sub.column(0).upper, 3.0);
  EXPECT_EQ(sub.column(0).objective, 1.5);
  EXPECT_EQ(sub.column(0).type, VarType::kInteger);
  EXPECT_EQ(sub.column(1).lower, 0.5);
  EXPECT_EQ(sub.column(1).upper, 4.0);
  EXPECT_EQ(sub.column(1).objective, -2.0);
  // The fixed variable's contribution (3.0 * 2.0) moved into the rhs.
  EXPECT_EQ(sub.row(0).terms.size(), 2u);
  EXPECT_DOUBLE_EQ(sub.row(0).rhs, 10.0 - 3.0 * 2.0);
  EXPECT_DOUBLE_EQ(sub.row(1).rhs, 1.0);
}

TEST(ExtractComponentTest, PreservesTightenedBinaryBounds) {
  // Branching / presolve may hand the extractor a binary already fixed to 1;
  // AddVariable clamps binary bounds, so extraction must restore the box.
  Model m;
  const int x0 = m.AddBinary(1.0);
  const int x1 = m.AddBinary(1.0);
  m.SetBounds(x0, 1.0, 1.0);
  m.AddRow({{x0, 1.0}, {x1, 1.0}}, RowSense::kLessEqual, 2.0);

  const Decomposition dec = DecomposeModel(m);
  // x0 is fixed -> only x1 is a graph node.
  ASSERT_EQ(dec.components.size(), 1u);
  const Model sub = ExtractComponent(m, dec.components[0]);
  ASSERT_EQ(sub.num_variables(), 1);
  EXPECT_DOUBLE_EQ(sub.row(0).rhs, 1.0);  // rhs absorbed x0 = 1
}

// --- Stitched solve vs monolithic -------------------------------------------

TEST(DecomposedSolveTest, StitchedObjectiveMatchesMonolithicExactly) {
  const Model m = testing::DecomposablePlacementModel(16, 8, 4, /*seed=*/5);
  MipStats mono_stats;
  const Solution mono = SolveMip(m, ExactOptions(), &mono_stats);
  ASSERT_EQ(mono.status, SolveStatus::kOptimal);

  MipStats dec_stats;
  const Solution dec = SolveMip(m, DecomposeExact(), &dec_stats);
  ASSERT_EQ(dec.status, SolveStatus::kOptimal);
  EXPECT_NEAR(dec.objective, mono.objective, 1e-6);
  EXPECT_EQ(dec_stats.components, 4);
  EXPECT_EQ(dec_stats.largest_component_integers, 8);
  ASSERT_EQ(static_cast<int>(dec.values.size()), m.num_variables());
  // The stitched assignment itself scores the reported objective.
  EXPECT_NEAR(m.Objective(dec.values), dec.objective, 1e-9);
}

TEST(DecomposedSolveTest, StitchingMapsInterleavedIndicesCorrectly) {
  // Two components whose variable indices interleave (a0, b0, a1, b1): the
  // stitcher must write each component's values through Component::vars, not
  // contiguously. Objectives are chosen so every variable's optimal value is
  // forced and distinct per component.
  Model m;
  const int a0 = m.AddBinary(5.0);
  const int b0 = m.AddBinary(-1.0);
  const int a1 = m.AddBinary(1.0);
  const int b1 = m.AddBinary(4.0);
  m.AddRow({{a0, 1.0}, {a1, 1.0}}, RowSense::kLessEqual, 1.0);
  m.AddRow({{b0, 1.0}, {b1, 1.0}}, RowSense::kLessEqual, 1.0);

  MipStats stats;
  const Solution dec = SolveMip(m, DecomposeExact(), &stats);
  ASSERT_EQ(dec.status, SolveStatus::kOptimal);
  EXPECT_EQ(stats.components, 2);
  EXPECT_NEAR(dec.objective, 9.0, 1e-9);
  EXPECT_NEAR(dec.values[static_cast<size_t>(a0)], 1.0, 1e-9);
  EXPECT_NEAR(dec.values[static_cast<size_t>(a1)], 0.0, 1e-9);
  EXPECT_NEAR(dec.values[static_cast<size_t>(b0)], 0.0, 1e-9);
  EXPECT_NEAR(dec.values[static_cast<size_t>(b1)], 1.0, 1e-9);
}

TEST(DecomposedSolveTest, FixedVariablesAndConstantRowsStitchThrough) {
  // Presolve off so the fixed column and the constant row reach the
  // decomposed stitcher instead of being folded away beforehand; a second
  // block keeps the model multi-component (one component hands the model
  // back to the monolithic engine).
  Model m;
  const int fixed = m.AddVariable(3.0, 3.0, 2.0, VarType::kContinuous);
  const int x0 = m.AddBinary(1.0);
  const int x1 = m.AddBinary(1.0);
  const int y0 = m.AddBinary(1.0);
  m.AddRow({{fixed, 1.0}}, RowSense::kLessEqual, 5.0);  // constant row, satisfied
  m.AddRow({{fixed, 1.0}, {x0, 1.0}, {x1, 1.0}}, RowSense::kLessEqual, 4.0);
  m.AddRow({{y0, 1.0}}, RowSense::kLessEqual, 1.0);

  MipOptions options = DecomposeExact();
  options.presolve = false;
  MipStats stats;
  const Solution dec = SolveMip(m, options, &stats);
  ASSERT_EQ(dec.status, SolveStatus::kOptimal);
  EXPECT_EQ(stats.components, 2);
  // fixed contributes 2*3=6; one of x0/x1 fits in the remaining capacity
  // 4-3=1; y0 is free to take its bound.
  EXPECT_NEAR(dec.objective, 8.0, 1e-9);
  EXPECT_NEAR(dec.values[static_cast<size_t>(fixed)], 3.0, 1e-9);
  EXPECT_NEAR(dec.values[static_cast<size_t>(y0)], 1.0, 1e-9);
}

TEST(DecomposedSolveTest, ViolatedConstantRowIsInfeasible) {
  Model m;
  const int fixed = m.AddVariable(3.0, 3.0, 2.0, VarType::kContinuous);
  const int x0 = m.AddBinary(1.0);
  m.AddRow({{fixed, 2.0}}, RowSense::kLessEqual, 5.0);  // 6 > 5: violated
  m.AddRow({{x0, 1.0}}, RowSense::kLessEqual, 1.0);
  // A second non-fixed variable so the model actually separates (the
  // single-component path hands the model back to the monolithic engine).
  const int x1 = m.AddBinary(1.0);
  m.AddRow({{x1, 1.0}}, RowSense::kLessEqual, 1.0);

  MipOptions options = DecomposeExact();
  options.presolve = false;  // reach the stitcher's constant-row check
  const Solution dec = SolveMip(m, options);
  EXPECT_EQ(dec.status, SolveStatus::kInfeasible);
}

TEST(DecomposedSolveTest, InfeasibleComponentMakesModelInfeasible) {
  Model m;
  const int x0 = m.AddBinary(1.0);
  const int x1 = m.AddBinary(1.0);
  m.AddRow({{x0, 1.0}}, RowSense::kGreaterEqual, 2.0);  // infeasible for a binary
  m.AddRow({{x1, 1.0}}, RowSense::kLessEqual, 1.0);

  MipOptions options = DecomposeExact();
  options.presolve = false;  // let the component sub-search prove infeasibility
  const Solution dec = SolveMip(m, options);
  EXPECT_EQ(dec.status, SolveStatus::kInfeasible);
}

// --- Relax-and-round fast lane ----------------------------------------------

// One knapsack block whose LP relaxation is fractional at every optimal
// vertex and whose naive rounding is infeasible: maximize 2a+2b subject to
// 2a+2b <= 3. LP optimum 3.0 at (1, 0.5) (or symmetric); rounding fixes both
// to 1, which violates the row, so the repair LP is infeasible and the fast
// lane must reject. The exact optimum is 2.0 (one variable at 1).
void AddRejectingKnapsack(Model& m) {
  const int a = m.AddBinary(2.0);
  const int b = m.AddBinary(2.0);
  m.AddRow({{a, 2.0}, {b, 2.0}}, RowSense::kLessEqual, 3.0);
}

TEST(RelaxAndRoundTest, RejectedCandidateFallsBackToExactBranchAndBound) {
  Model m;
  AddRejectingKnapsack(m);
  AddRejectingKnapsack(m);

  // Monolithic exact reference.
  const Solution mono = SolveMip(m, ExactOptions());
  ASSERT_EQ(mono.status, SolveStatus::kOptimal);
  EXPECT_NEAR(mono.objective, 4.0, 1e-9);

  MipOptions options = DecomposeExact();
  options.relax_round_min_integers = 1;  // force the fast lane on every component
  // Presolve probing derives the clique a + b <= 1 from 2a + 2b <= 3, which
  // makes the LP vertex integral and the fast lane accept. Disable it so the
  // rejection/fallback path stays exercised.
  options.presolve = false;
  MipStats stats;
  const Solution dec = SolveMip(m, options, &stats);
  ASSERT_EQ(dec.status, SolveStatus::kOptimal);
  EXPECT_EQ(stats.components, 2);
  // Both components attempted the fast lane, both were rejected by the
  // certifier (infeasible rounding), and the exact fallback still produced
  // the monolithic optimum.
  EXPECT_EQ(stats.relax_round_rejected, 2);
  EXPECT_EQ(stats.relax_round_accepted, 0);
  EXPECT_GT(stats.nodes_explored, 0);
  EXPECT_NEAR(dec.objective, mono.objective, 1e-9);
}

TEST(RelaxAndRoundTest, IntegralRelaxationIsAcceptedWithoutSearch) {
  // Each block's LP optimum is the integral vertex (1, 0), so the fast lane
  // accepts and no branch-and-bound node is ever explored. (The row is not
  // redundant — max activity 2 > rhs 1 — so presolve keeps it.)
  Model m;
  for (int b = 0; b < 2; ++b) {
    const int x0 = m.AddBinary(2.0);
    const int x1 = m.AddBinary(1.0);
    m.AddRow({{x0, 1.0}, {x1, 1.0}}, RowSense::kLessEqual, 1.0);
  }

  MipOptions options = DecomposeExact();
  options.relax_round_min_integers = 1;
  MipStats stats;
  const Solution dec = SolveMip(m, options, &stats);
  ASSERT_EQ(dec.status, SolveStatus::kOptimal);
  EXPECT_NEAR(dec.objective, 4.0, 1e-9);
  EXPECT_EQ(stats.relax_round_accepted, 2);
  EXPECT_EQ(stats.relax_round_rejected, 0);
  EXPECT_EQ(stats.nodes_explored, 0);
}

TEST(RelaxAndRoundTest, ThresholdGatesTheFastLane) {
  // With the threshold above every component size the fast lane never runs:
  // the exact searches solve both components directly.
  Model m;
  AddRejectingKnapsack(m);
  AddRejectingKnapsack(m);

  MipOptions options = DecomposeExact();
  options.relax_round_min_integers = 64;  // components have 2 integers each
  MipStats stats;
  const Solution dec = SolveMip(m, options, &stats);
  ASSERT_EQ(dec.status, SolveStatus::kOptimal);
  EXPECT_EQ(stats.relax_round_accepted, 0);
  EXPECT_EQ(stats.relax_round_rejected, 0);
  EXPECT_NEAR(dec.objective, 4.0, 1e-9);
}

// --- Root reduced-cost fixing -----------------------------------------------

TEST(ReducedCostFixingTest, FixingPreservesTheExactObjective) {
  // Fixing is basis-dependent but must never change the certified optimum.
  for (const uint64_t seed : {3ULL, 5ULL, 7ULL, 11ULL}) {
    const Model m = testing::PlacementModel(12, 6, seed);
    MipOptions off = ExactOptions();
    MipOptions on = ExactOptions();
    on.reduced_cost_fixing = true;
    MipStats off_stats, on_stats;
    const Solution base = SolveMip(m, off, &off_stats);
    const Solution fixed = SolveMip(m, on, &on_stats);
    ASSERT_EQ(base.status, SolveStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(fixed.status, SolveStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(fixed.objective, base.objective, 1e-6) << "seed " << seed;
    EXPECT_EQ(off_stats.reduced_cost_fixed, 0);
    EXPECT_GE(on_stats.reduced_cost_fixed, 0);
  }
}

TEST(ReducedCostFixingTest, ParallelSearchAgreesWithFixingEnabled) {
  const Model m = testing::PlacementModel(12, 6, 7);
  const Solution serial = SolveMip(m, ExactOptions());
  ASSERT_EQ(serial.status, SolveStatus::kOptimal);

  MipOptions options = ExactOptions();
  options.reduced_cost_fixing = true;
  options.num_threads = 4;
  MipStats stats;
  const Solution parallel = SolveMip(m, options, &stats);
  ASSERT_EQ(parallel.status, SolveStatus::kOptimal);
  EXPECT_NEAR(parallel.objective, serial.objective, 1e-6);
}

}  // namespace
}  // namespace medea::solver
