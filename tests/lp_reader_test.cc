// Tests for the LP-format reader, including write->read->solve round-trip
// properties against the writer and hand-written external-style files.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/solver/lp_reader.h"
#include "src/solver/lp_writer.h"
#include "src/solver/mip.h"

namespace medea::solver {
namespace {

TEST(LpReaderTest, HandWrittenModel) {
  const char* text = R"(\ a comment line
Minimize
 cost: 2 x + 3 y - z
Subject To
 c1: x + y >= 10
 c2: x + 2 z <= 4
 c3: y = 3
Bounds
 0 <= x <= 20
 z free
End
)";
  auto model = ParseLpFormat(text);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_FALSE(model->maximize());
  EXPECT_EQ(model->num_variables(), 3);
  EXPECT_EQ(model->num_rows(), 3);
  // x: bounds [0,20], objective 2.
  EXPECT_DOUBLE_EQ(model->column(0).lower, 0.0);
  EXPECT_DOUBLE_EQ(model->column(0).upper, 20.0);
  EXPECT_DOUBLE_EQ(model->column(0).objective, 2.0);
  // z: free, objective -1.
  EXPECT_DOUBLE_EQ(model->column(2).lower, -kInfinity);
  EXPECT_DOUBLE_EQ(model->column(2).objective, -1.0);
  // c2 terms.
  EXPECT_EQ(model->row(1).sense, RowSense::kLessEqual);
  EXPECT_DOUBLE_EQ(model->row(1).rhs, 4.0);

  const Solution s = SolveLp(*model);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  // y = 3 (c3); c1 forces x >= 7; c2 caps z <= (4 - x)/2, and -z in a
  // minimization pushes z up, so x = 7, z = -1.5:
  // objective = 2*7 + 3*3 - (-1.5) = 24.5.
  EXPECT_NEAR(s.objective, 24.5, 1e-6);
}

TEST(LpReaderTest, DetectsUnboundedFromFreeVariable) {
  const char* text = R"(Minimize
 obj: - z
Subject To
 c: z >= 1
End
)";
  auto model = ParseLpFormat(text);
  ASSERT_TRUE(model.ok());
  // z has default bounds [0, inf): minimizing -z is unbounded.
  EXPECT_EQ(SolveLp(*model).status, SolveStatus::kUnbounded);
}

TEST(LpReaderTest, BinaryAndGeneralSections) {
  const char* text = R"(Maximize
 obj: 5 a + 3 b + c
Subject To
 cap: a + b + 0.5 c <= 2
Bounds
 0 <= c <= 8
General
 c
Binary
 a
 b
End
)";
  auto model = ParseLpFormat(text);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model->column(0).type, VarType::kBinary);
  EXPECT_EQ(model->column(1).type, VarType::kBinary);
  EXPECT_EQ(model->column(2).type, VarType::kInteger);
  const Solution s = SolveMip(*model);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  // a=1, b=1 fills the capacity; c=0. Objective 8.
  EXPECT_NEAR(s.objective, 8.0, 1e-6);
}

TEST(LpReaderTest, MalformedInputsRejected) {
  EXPECT_FALSE(ParseLpFormat("").ok());
  EXPECT_FALSE(ParseLpFormat("Subject To\n x <= 1\nEnd\n").ok());  // no objective
  EXPECT_FALSE(ParseLpFormat("Maximize\n obj: x\nSubject To\n c: x + y\nEnd\n").ok());
  EXPECT_FALSE(ParseLpFormat("Maximize\n obj: x\nSubject To\n c: x <= \nEnd\n").ok());
  EXPECT_FALSE(ParseLpFormat("Maximize\n obj: 3 4 x\nEnd\n").ok());
}

TEST(LpReaderTest, ErrorsCarryLineNumbers) {
  const auto result = ParseLpFormat("Maximize\n obj: x\nSubject To\n c: x <=\nEnd\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line"), std::string::npos);
}

// Round-trip property: write -> parse -> same optimum.
class LpRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LpRoundTrip, PreservesOptimum) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6364136223846793005ULL + 1);
  Model original;
  const int n = static_cast<int>(rng.NextInt(2, 8));
  for (int j = 0; j < n; ++j) {
    const int type_pick = static_cast<int>(rng.NextBounded(3));
    const VarType type = type_pick == 0   ? VarType::kContinuous
                         : type_pick == 1 ? VarType::kBinary
                                          : VarType::kInteger;
    original.AddVariable(0, rng.NextDouble(1, 9), rng.NextDouble(-5, 5), type);
  }
  const int rows = static_cast<int>(rng.NextInt(1, 5));
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.NextBool(0.7)) {
        terms.emplace_back(j, rng.NextDouble(0.1, 4.0));
      }
    }
    original.AddRow(terms, rng.NextBool(0.5) ? RowSense::kLessEqual : RowSense::kGreaterEqual,
                    rng.NextDouble(0, 10));
  }
  original.SetMaximize(rng.NextBool(0.5));

  auto reparsed = ParseLpFormat(WriteLpFormat(original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->num_variables(), original.num_variables());
  ASSERT_EQ(reparsed->num_rows(), original.num_rows());
  EXPECT_EQ(reparsed->maximize(), original.maximize());

  const Solution a = SolveMip(original);
  const Solution b = SolveMip(*reparsed);
  ASSERT_EQ(a.HasSolution(), b.HasSolution()) << "case " << GetParam();
  if (a.HasSolution()) {
    EXPECT_NEAR(a.objective, b.objective, 1e-5) << "case " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LpRoundTrip, ::testing::Range(0, 25));

TEST(LpReaderTest, RoundTripsSchedulerDump) {
  // An end-to-end check: a model written by the writer with generated names
  // ("x_0_1_n5", "eq2_3") parses back.
  Model m;
  const int x = m.AddBinary(0.0, "x_0_1_n5");
  const int s = m.AddBinary(1.0, "S_0");
  m.AddRow({{x, 1.0}}, RowSense::kLessEqual, 1, "eq2");
  m.AddRow({{x, 1.0}, {s, -1.0}}, RowSense::kEqual, 0, "eq4");
  auto round = ParseLpFormat(WriteLpFormat(m));
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  const Solution a = SolveMip(m);
  const Solution b = SolveMip(*round);
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
}

}  // namespace
}  // namespace medea::solver
