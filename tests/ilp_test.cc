// Targeted tests of the Medea-ILP scheduler's Fig. 5 formulation: exact
// cardinality windows, static-tag affinity, fragmentation pressure (Eq. 5),
// deployed-app rows, weight sensitivity, warm-start and budget behaviour.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/core/violation.h"
#include "src/schedulers/ilp_scheduler.h"
#include "src/solver/lp_reader.h"
#include "src/solver/mip.h"
#include "src/workload/lra_templates.h"

namespace medea {
namespace {

class IlpTest : public ::testing::Test {
 protected:
  IlpTest()
      : state_(ClusterBuilder()
                   .NumNodes(12)
                   .NumRacks(3)
                   .NumUpgradeDomains(3)
                   .NumServiceUnits(3)
                   .NodeCapacity(Resource(16 * 1024, 8))
                   .Build()),
        manager_(state_.groups_ptr()) {}

  SchedulerConfig Config() {
    SchedulerConfig config;
    config.node_pool_size = 12;
    config.candidates_per_container = 12;
    config.ilp_time_limit_seconds = 5.0;
    return config;
  }

  LraRequest Lra(ApplicationId app, int n, const std::string& tag,
                 Resource demand = Resource(1024, 1)) {
    return MakeGenericLra(app, manager_.tags(), n, tag, demand).request;
  }

  PlacementPlan PlaceAndCommit(std::vector<LraRequest> lras, SchedulerConfig config) {
    MedeaIlpScheduler ilp(config);
    PlacementProblem problem;
    problem.lras = std::move(lras);
    problem.state = &state_;
    problem.manager = &manager_;
    const auto plan = ilp.Place(problem);
    CommitPlan(problem, plan, state_);
    last_stats_ = ilp.last_stats();
    return plan;
  }

  ClusterState state_;
  ConstraintManager manager_;
  MedeaIlpScheduler::LastSolveStats last_stats_;
};

TEST_F(IlpTest, ExactCardinalityWindow) {
  // Exactly 3 workers per node (cmin=2 others, cmax=2 others) for 6 workers.
  ASSERT_TRUE(manager_
                  .AddFromText("{w, {w, 2, 2}, node}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  const auto plan = PlaceAndCommit({Lra(ApplicationId(1), 6, "w")}, Config());
  ASSERT_EQ(plan.NumPlaced(), 1);
  int used_nodes = 0;
  state_.ForEachNode([&](const Node& node) {
    if (!node.containers().empty()) {
      EXPECT_EQ(node.containers().size(), 3u);
      ++used_nodes;
    }
  });
  EXPECT_EQ(used_nodes, 2);
}

TEST_F(IlpTest, StaticTagAffinity) {
  // "gpu" is a static node tag on nodes 4 and 9; ML workers demand it.
  const TagId gpu = manager_.tags().Intern("gpu");
  state_.AddStaticNodeTag(NodeId(4), gpu);
  state_.AddStaticNodeTag(NodeId(9), gpu);
  ASSERT_TRUE(manager_
                  .AddFromText("{ml, {gpu, 1, inf}, node}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  const auto plan = PlaceAndCommit({Lra(ApplicationId(1), 4, "ml")}, Config());
  ASSERT_EQ(plan.NumPlaced(), 1);
  for (const Assignment& a : plan.assignments) {
    EXPECT_TRUE(a.node == NodeId(4) || a.node == NodeId(9)) << "node " << a.node.value;
  }
}

TEST_F(IlpTest, FragmentationPressureAvoidsCreatingCrumbs) {
  // Eq. 5's z-term penalizes leaving a node with less than r_min free.
  // Nodes 0-3 have 3 GB free; placing a 2 GB container there would strand
  // 1 GB (< r_min = 2 GB). With plenty of empty nodes, the ILP must not
  // create new fragmented nodes.
  for (uint32_t n = 0; n < 4; ++n) {
    ASSERT_TRUE(state_
                    .Allocate(ApplicationId(99), NodeId(n), Resource(13 * 1024, 1), {}, false)
                    .ok());
  }
  EXPECT_DOUBLE_EQ(state_.FragmentedNodeFraction(Resource(2048, 1)), 0.0);
  const auto plan = PlaceAndCommit({Lra(ApplicationId(1), 6, "w", Resource(2048, 1))},
                                   Config());
  ASSERT_EQ(plan.NumPlaced(), 1);
  EXPECT_DOUBLE_EQ(state_.FragmentedNodeFraction(Resource(2048, 1)), 0.0);
}

TEST_F(IlpTest, RespectsDeployedAppAntiAffinityViaSharedTag) {
  // Deployed app 5 holds "quiet" containers with an operator rule keeping
  // "noisy" away from quiet nodes.
  const TagId quiet = manager_.tags().Intern("quiet");
  ASSERT_TRUE(state_.Allocate(ApplicationId(5), NodeId(2), Resource(1024, 1), {quiet}, true)
                  .ok());
  ASSERT_TRUE(state_.Allocate(ApplicationId(5), NodeId(7), Resource(1024, 1), {quiet}, true)
                  .ok());
  ASSERT_TRUE(
      manager_.AddFromText("{quiet, {noisy, 0, 0}, node}", ConstraintOrigin::kOperator).ok());
  const auto plan = PlaceAndCommit({Lra(ApplicationId(6), 6, "noisy")}, Config());
  ASSERT_EQ(plan.NumPlaced(), 1);
  for (const Assignment& a : plan.assignments) {
    EXPECT_NE(a.node, NodeId(2));
    EXPECT_NE(a.node, NodeId(7));
  }
}

TEST_F(IlpTest, HigherWeightConstraintWinsConflict) {
  // Two irreconcilable soft constraints on the same subject: affinity to
  // "anchor" (weight 5) vs anti-affinity to it (weight 0.1). The heavy one
  // must be satisfied.
  const TagId anchor = manager_.tags().Intern("anchor");
  ASSERT_TRUE(
      state_.Allocate(ApplicationId(5), NodeId(3), Resource(1024, 1), {anchor}, true).ok());
  ASSERT_TRUE(manager_
                  .AddFromText("{w, {anchor, 1, inf}, node} #5", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  ASSERT_TRUE(manager_
                  .AddFromText("{w, {anchor, 0, 0}, node} #0.1",
                               ConstraintOrigin::kApplication, ApplicationId(1))
                  .ok());
  const auto plan = PlaceAndCommit({Lra(ApplicationId(1), 2, "w")}, Config());
  ASSERT_EQ(plan.NumPlaced(), 1);
  for (const Assignment& a : plan.assignments) {
    EXPECT_EQ(a.node, NodeId(3));
  }
}

TEST_F(IlpTest, ColdSolveStillPlaces) {
  SchedulerConfig config = Config();
  config.ilp_warm_start = false;
  ASSERT_TRUE(manager_
                  .AddFromText("{w, {w, 0, 0}, node}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  const auto plan = PlaceAndCommit({Lra(ApplicationId(1), 4, "w")}, config);
  EXPECT_EQ(plan.NumPlaced(), 1);
  const auto report = ConstraintEvaluator::EvaluateAll(state_, manager_);
  EXPECT_EQ(report.violated_subjects, 0);
}

TEST_F(IlpTest, TimeBudgetRespected) {
  SchedulerConfig config = Config();
  config.ilp_time_limit_seconds = 0.05;
  // A deliberately contended problem.
  ASSERT_TRUE(manager_
                  .AddFromText("{w, {w, 0, 0}, node}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  MedeaIlpScheduler ilp(config);
  PlacementProblem problem;
  problem.lras = {Lra(ApplicationId(1), 10, "w")};
  problem.state = &state_;
  problem.manager = &manager_;
  const auto plan = ilp.Place(problem);
  // Budget + greedy warm start + model build: allow generous slack, but the
  // solve must not run unbounded.
  EXPECT_LT(plan.latency_ms, 1500.0);
  EXPECT_EQ(plan.NumPlaced(), 1);  // anytime behaviour: incumbent exists
}

TEST_F(IlpTest, EmptyProblemYieldsEmptyPlan) {
  MedeaIlpScheduler ilp(Config());
  PlacementProblem problem;
  problem.state = &state_;
  problem.manager = &manager_;
  const auto plan = ilp.Place(problem);
  EXPECT_EQ(plan.NumPlaced(), 0);
  EXPECT_TRUE(plan.assignments.empty());
}

TEST_F(IlpTest, UnplaceableLraReportedNotPlaced) {
  // Demands exceed any node.
  const auto plan = PlaceAndCommit(
      {Lra(ApplicationId(1), 2, "w", Resource(32 * 1024, 16))}, Config());
  EXPECT_EQ(plan.NumPlaced(), 0);
  EXPECT_EQ(state_.num_containers(), 0u);
}

TEST_F(IlpTest, BatchPrefersPlacingBothWhenPossible) {
  const auto plan = PlaceAndCommit(
      {Lra(ApplicationId(1), 6, "a", Resource(4096, 2)),
       Lra(ApplicationId(2), 6, "b", Resource(4096, 2))},
      Config());
  EXPECT_EQ(plan.NumPlaced(), 2);
}

TEST_F(IlpTest, MinMachinesObjectivePrefersUsedNodes) {
  // Node 5 already hosts a container; with w5 on, new containers should
  // favour it over opening fresh machines.
  ASSERT_TRUE(
      state_.Allocate(ApplicationId(9), NodeId(5), Resource(1024, 1), {}, true).ok());
  SchedulerConfig config = Config();
  config.w5_min_machines = 2.0;
  config.w3_fragmentation = 0.0;  // isolate the machine-count term
  const auto plan = PlaceAndCommit({Lra(ApplicationId(1), 4, "w", Resource(2048, 1))}, config);
  ASSERT_EQ(plan.NumPlaced(), 1);
  int newly_used = 0;
  state_.ForEachNode([&](const Node& node) {
    if (node.id() != NodeId(5) && !node.containers().empty()) {
      ++newly_used;
    }
  });
  EXPECT_EQ(newly_used, 0);  // everything fits on the already-used machine
}

TEST_F(IlpTest, LoadBalanceObjectiveFlattensPeak) {
  SchedulerConfig balanced = Config();
  balanced.w4_load_balance = 2.0;
  balanced.w3_fragmentation = 0.0;
  const auto plan = PlaceAndCommit({Lra(ApplicationId(1), 6, "w", Resource(4096, 2))},
                                   balanced);
  ASSERT_EQ(plan.NumPlaced(), 1);
  double max_load = 0.0;
  state_.ForEachNode([&](const Node& node) {
    max_load = std::max(max_load, node.used().DominantShareOf(node.capacity()));
  });
  // 6 x 2-core containers over 12 x 8-core nodes: a flat placement keeps
  // every node at <= 1 container (load 0.25).
  EXPECT_LE(max_load, 0.26);
}

TEST_F(IlpTest, StatsReflectModelShape) {
  PlaceAndCommit({Lra(ApplicationId(1), 3, "w")}, Config());
  EXPECT_GT(last_stats_.variables, 36);  // 3 containers x 12 candidates + extras
  EXPECT_GE(last_stats_.binaries, 36);
  EXPECT_GT(last_stats_.rows, 3);
  EXPECT_TRUE(last_stats_.status == solver::SolveStatus::kOptimal ||
              last_stats_.status == solver::SolveStatus::kFeasible);
}

TEST_F(IlpTest, DumpedModelsParseAndResolve) {
  // ilp_dump_directory writes each cycle's model; the LP reader must parse
  // it back and the re-solved objective must match the scheduler's.
  SchedulerConfig config = Config();
  config.ilp_dump_directory = ::testing::TempDir();
  ASSERT_TRUE(manager_
                  .AddFromText("{w, {w, 0, 1}, node}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  MedeaIlpScheduler ilp(config);
  PlacementProblem problem;
  problem.lras = {Lra(ApplicationId(1), 4, "w")};
  problem.state = &state_;
  problem.manager = &manager_;
  const auto plan = ilp.Place(problem);
  ASSERT_EQ(plan.NumPlaced(), 1);

  auto model = solver::ReadLpFile(::testing::TempDir() + "/medea_cycle_0.lp");
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_GT(model->num_variables(), 0);
  solver::MipOptions options;
  options.time_limit_seconds = 5.0;
  const auto solution = SolveMip(*model, options);
  ASSERT_TRUE(solution.HasSolution());
  EXPECT_NEAR(solution.objective, ilp.last_stats().objective, 2e-2);
}

// Property sweep: on tiny instances, the ILP's placement must match the
// brute-force optimum of the violation count (weighted extent as the
// tiebreak dimension is solver-internal; violated-subject count is what the
// paper reports, and on these instances the optima coincide).
class IlpBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(IlpBruteForce, MatchesExhaustiveViolationMinimum) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2166136261u + 9);
  ClusterState state = ClusterBuilder()
                           .NumNodes(4)
                           .NumRacks(2)
                           .NumUpgradeDomains(2)
                           .NumServiceUnits(2)
                           .NodeCapacity(Resource(8 * 1024, 8))
                           .Build();
  ConstraintManager manager(state.groups_ptr());

  // A couple of pre-placed containers with random tags.
  const char* tag_names[] = {"a", "b", "c"};
  for (int i = 0; i < 2; ++i) {
    const NodeId n(static_cast<uint32_t>(rng.NextBounded(4)));
    ASSERT_TRUE(state
                    .Allocate(ApplicationId(50), n, Resource(1024, 1),
                              {manager.tags().Intern(tag_names[rng.NextBounded(3)])}, true)
                    .ok());
  }

  // One LRA with 3 containers tagged randomly from {a,b,c}.
  LraRequest lra;
  lra.app = ApplicationId(1);
  for (int i = 0; i < 3; ++i) {
    lra.containers.push_back(ContainerRequest{
        Resource(1024, 1), {manager.tags().Intern(tag_names[rng.NextBounded(3)])}});
  }

  // 1-2 random constraints over the tag alphabet.
  const char* groups[] = {"node", "rack"};
  const int num_constraints = 1 + static_cast<int>(rng.NextBounded(2));
  for (int i = 0; i < num_constraints; ++i) {
    const int cmin = static_cast<int>(rng.NextBounded(2));
    const bool unbounded = rng.NextBool(0.4);
    const int cmax = unbounded ? kCardinalityInfinity
                               : cmin + static_cast<int>(rng.NextBounded(2));
    const std::string text =
        StrFormat("{%s, {%s, %d, %s}, %s}", tag_names[rng.NextBounded(3)],
                  tag_names[rng.NextBounded(3)], cmin,
                  unbounded ? "inf" : StrFormat("%d", cmax).c_str(),
                  groups[rng.NextBounded(2)]);
    ASSERT_TRUE(
        manager.AddFromText(text, ConstraintOrigin::kApplication, ApplicationId(1)).ok())
        << text;
  }

  // Brute force: all 4^3 placements of the three containers.
  int best_violations = 1 << 20;
  for (int mask = 0; mask < 4 * 4 * 4; ++mask) {
    ClusterState trial = state;
    int nodes[3] = {mask % 4, (mask / 4) % 4, (mask / 16) % 4};
    bool ok = true;
    for (int c = 0; c < 3 && ok; ++c) {
      ok = trial
               .Allocate(lra.app, NodeId(static_cast<uint32_t>(nodes[c])),
                         lra.containers[static_cast<size_t>(c)].demand,
                         lra.containers[static_cast<size_t>(c)].tags, true)
               .ok();
    }
    if (!ok) {
      continue;
    }
    const auto report = ConstraintEvaluator::EvaluateAll(trial, manager);
    best_violations = std::min(best_violations, report.violated_subjects);
  }
  ASSERT_LT(best_violations, 1 << 20);

  // The ILP (generous budget, full pool).
  SchedulerConfig config;
  config.node_pool_size = 4;
  config.candidates_per_container = 4;
  config.ilp_time_limit_seconds = 10.0;
  MedeaIlpScheduler ilp(config);
  PlacementProblem problem;
  problem.lras = {lra};
  problem.state = &state;
  problem.manager = &manager;
  const auto plan = ilp.Place(problem);
  ASSERT_EQ(plan.NumPlaced(), 1) << "case " << GetParam();
  ASSERT_TRUE(CommitPlan(problem, plan, state));
  const auto report = ConstraintEvaluator::EvaluateAll(state, manager);
  EXPECT_EQ(report.violated_subjects, best_violations) << "case " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, IlpBruteForce, ::testing::Range(0, 25));

}  // namespace
}  // namespace medea
