// Tests for the root cutting-plane machinery (src/solver/cuts.h): separation
// correctness on hand-built knapsacks, a brute-force validity property (every
// generated cut is satisfied by EVERY integer-feasible point of its source
// model), the cut-pool loop, and the strong-branching pseudo-cost
// initializer. Validity is what keeps cut-and-branch sound: a single invalid
// cut silently removes the optimum.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/solver/cuts.h"
#include "src/solver/mip.h"
#include "src/solver/model.h"
#include "src/solver/testing/placement_model.h"

namespace medea::solver::internal {
namespace {

// Enumerates every integral point of `model` (all integer variables over
// their bounds, continuous fixed at lower) and checks that each point that
// satisfies the ORIGINAL rows also satisfies every cut. Models stay small
// (<= ~16 binaries) so the 2^n sweep is instant.
void ExpectCutsValid(const Model& model, const std::vector<Cut>& cuts) {
  const int n = model.num_variables();
  std::vector<double> point(static_cast<size_t>(n), 0.0);
  std::vector<int> lo(static_cast<size_t>(n), 0), hi(static_cast<size_t>(n), 0);
  long long combos = 1;
  for (int j = 0; j < n; ++j) {
    const auto& col = model.column(j);
    if (col.type == VarType::kContinuous) {
      point[static_cast<size_t>(j)] = col.lower;
      continue;
    }
    lo[static_cast<size_t>(j)] = static_cast<int>(std::ceil(col.lower - 1e-9));
    hi[static_cast<size_t>(j)] = static_cast<int>(std::floor(col.upper + 1e-9));
    ASSERT_GE(hi[static_cast<size_t>(j)], lo[static_cast<size_t>(j)]);
    combos *= hi[static_cast<size_t>(j)] - lo[static_cast<size_t>(j)] + 1;
    ASSERT_LE(combos, 1 << 20) << "model too large to enumerate";
  }
  std::vector<int> idx(static_cast<size_t>(n), 0);
  for (long long it = 0; it < combos; ++it) {
    long long rest = it;
    for (int j = 0; j < n; ++j) {
      if (model.column(j).type == VarType::kContinuous) {
        continue;
      }
      const int span = hi[static_cast<size_t>(j)] - lo[static_cast<size_t>(j)] + 1;
      point[static_cast<size_t>(j)] = lo[static_cast<size_t>(j)] + static_cast<int>(rest % span);
      rest /= span;
    }
    if (!model.IsFeasible(point, 1e-9)) {
      continue;
    }
    for (const Cut& cut : cuts) {
      double lhs = 0.0;
      for (const auto& [var, coeff] : cut.terms) {
        lhs += coeff * point[static_cast<size_t>(var)];
      }
      EXPECT_LE(lhs, cut.rhs + 1e-9)
          << cut.family << " cut from row " << cut.source_row
          << " violated by an integer-feasible point";
    }
  }
}

TEST(CoverCutTest, SeparatesMinimalCoverFromFractionalKnapsack) {
  // 3x + 3y + 3z <= 7: any two items fit, all three do not, so {x, y, z} is
  // a (minimal) cover and x + y + z <= 2 is valid. The fractional point
  // (0.75, 0.75, 0.75) satisfies the knapsack (activity 6.75) but violates
  // the cover cut (2.25 > 2).
  Model m;
  const int x = m.AddBinary(1.0);
  const int y = m.AddBinary(1.0);
  const int z = m.AddBinary(1.0);
  m.AddRow({{x, 3.0}, {y, 3.0}, {z, 3.0}}, RowSense::kLessEqual, 7.0);

  CutOptions options;
  const std::vector<Cut> cuts =
      SeparateCoverCuts(m, m.num_rows(), {0.75, 0.75, 0.75}, options);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0].terms.size(), 3u);
  EXPECT_DOUBLE_EQ(cuts[0].rhs, 2.0);
  EXPECT_GT(cuts[0].violation, options.min_violation);
  ExpectCutsValid(m, cuts);
}

TEST(CoverCutTest, ExtendsCoverWithDominatingCoefficient) {
  // 5w + 3x + 3y + 3z <= 7: {x, y, z} is a cover; w's coefficient dominates
  // every cover member's, so the extended cut w + x + y + z <= 2 is valid
  // and strictly stronger.
  Model m;
  const int w = m.AddBinary(1.0);
  const int x = m.AddBinary(1.0);
  const int y = m.AddBinary(1.0);
  const int z = m.AddBinary(1.0);
  m.AddRow({{w, 5.0}, {x, 3.0}, {y, 3.0}, {z, 3.0}}, RowSense::kLessEqual, 7.0);

  CutOptions options;
  const std::vector<Cut> cuts =
      SeparateCoverCuts(m, m.num_rows(), {0.0, 0.75, 0.75, 0.75}, options);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0].terms.size(), 4u);  // extension pulled w in
  EXPECT_DOUBLE_EQ(cuts[0].rhs, 2.0);
  ExpectCutsValid(m, cuts);
}

TEST(CoverCutTest, GreaterEqualRowSeparatesThroughNegation) {
  // -3x - 3y - 3z >= -7 is the same knapsack in >= form; separation must
  // reach it through the negated view.
  Model m;
  const int x = m.AddBinary(1.0);
  const int y = m.AddBinary(1.0);
  const int z = m.AddBinary(1.0);
  m.AddRow({{x, -3.0}, {y, -3.0}, {z, -3.0}}, RowSense::kGreaterEqual, -7.0);

  CutOptions options;
  const std::vector<Cut> cuts =
      SeparateCoverCuts(m, m.num_rows(), {0.75, 0.75, 0.75}, options);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_DOUBLE_EQ(cuts[0].rhs, 2.0);
  ExpectCutsValid(m, cuts);
}

TEST(CoverCutTest, IneligibleTermsTightenTheResidualKnapsack) {
  // The continuous term c in [1, 2] with coefficient 2 consumes at least 2
  // of the capacity: the binaries face 3x + 3y <= 7 - 2 = 5, a cover.
  Model m;
  const int x = m.AddBinary(1.0);
  const int y = m.AddBinary(1.0);
  const int c = m.AddContinuous(1.0, 2.0, 0.0);
  m.AddRow({{x, 3.0}, {y, 3.0}, {c, 2.0}}, RowSense::kLessEqual, 7.0);

  CutOptions options;
  const std::vector<Cut> cuts = SeparateCoverCuts(m, m.num_rows(), {0.9, 0.9, 1.0}, options);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_DOUBLE_EQ(cuts[0].rhs, 1.0);  // x + y <= 1
  ExpectCutsValid(m, cuts);
}

TEST(CliqueCutTest, PairwiseConflictingPrefixYieldsCliqueCut) {
  // 4x + 4y + 4z + w <= 7: any two of {x, y, z} overflow, so at most one
  // can be 1.
  Model m;
  const int x = m.AddBinary(1.0);
  const int y = m.AddBinary(1.0);
  const int z = m.AddBinary(1.0);
  const int w = m.AddBinary(1.0);
  m.AddRow({{x, 4.0}, {y, 4.0}, {z, 4.0}, {w, 1.0}}, RowSense::kLessEqual, 7.0);

  CutOptions options;
  const std::vector<Cut> cuts =
      SeparateCliqueCuts(m, m.num_rows(), {0.5, 0.5, 0.5, 0.0}, options);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0].terms.size(), 3u);
  EXPECT_DOUBLE_EQ(cuts[0].rhs, 1.0);
  ExpectCutsValid(m, cuts);
}

TEST(CliqueCutTest, NoCutWhenTwoLargestFit) {
  // 3x + 3y + 3z <= 7: two items fit together, so no clique exists (the
  // cover cut handles this shape instead).
  Model m;
  const int x = m.AddBinary(1.0);
  const int y = m.AddBinary(1.0);
  const int z = m.AddBinary(1.0);
  m.AddRow({{x, 3.0}, {y, 3.0}, {z, 3.0}}, RowSense::kLessEqual, 7.0);

  CutOptions options;
  EXPECT_TRUE(SeparateCliqueCuts(m, m.num_rows(), {0.75, 0.75, 0.75}, options).empty());
}

TEST(CliqueCutTest, SatisfiedCutIsNotSeparated) {
  Model m;
  const int x = m.AddBinary(1.0);
  const int y = m.AddBinary(1.0);
  m.AddRow({{x, 4.0}, {y, 4.0}}, RowSense::kLessEqual, 7.0);

  CutOptions options;
  // x + y = 0.9 <= 1: the clique inequality holds at this point.
  EXPECT_TRUE(SeparateCliqueCuts(m, m.num_rows(), {0.45, 0.45}, options).empty());
}

// Randomized validity sweep: on random small knapsack models, every cut both
// separators produce at a random fractional point is satisfied by every
// integer-feasible solution (brute-force enumeration).
TEST(CutValidityTest, RandomKnapsacksAllCutsValid) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 2654435761ULL + 7);
    Model m;
    const int n = static_cast<int>(rng.NextInt(3, 10));
    for (int j = 0; j < n; ++j) {
      m.AddBinary(rng.NextDouble(0.5, 1.5));
    }
    const int rows = static_cast<int>(rng.NextInt(1, 4));
    for (int r = 0; r < rows; ++r) {
      std::vector<std::pair<int, double>> terms;
      for (int j = 0; j < n; ++j) {
        if (rng.NextBool(0.8)) {
          terms.emplace_back(j, rng.NextDouble(1.0, 5.0));
        }
      }
      if (terms.empty()) {
        continue;
      }
      const RowSense sense = rng.NextBool(0.3) ? RowSense::kGreaterEqual : RowSense::kLessEqual;
      const double rhs = rng.NextDouble(2.0, 8.0);
      m.AddRow(terms, sense, sense == RowSense::kGreaterEqual ? -rhs : rhs);
    }
    std::vector<double> x(static_cast<size_t>(n));
    for (int j = 0; j < n; ++j) {
      x[static_cast<size_t>(j)] = rng.NextDouble(0.0, 1.0);
    }
    CutOptions options;
    options.min_violation = 1e-6;
    std::vector<Cut> cuts = SeparateCoverCuts(m, m.num_rows(), x, options);
    const std::vector<Cut> cliques = SeparateCliqueCuts(m, m.num_rows(), x, options);
    cuts.insert(cuts.end(), cliques.begin(), cliques.end());
    ExpectCutsValid(m, cuts);
  }
}

// The cut-pool loop preserves the MIP optimum: cuts-on and cuts-off solves
// of placement models agree on status and objective. The default 1% pruning
// gap is zeroed because the two searches explore different trees, and
// "optimal within gap" may land on different incumbents.
TEST(AddRootCutsTest, PreservesOptimumOnPlacementModels) {
  int total_generated = 0;
  for (const uint64_t seed : {3ULL, 5ULL, 7ULL}) {
    const Model m = testing::PlacementModel(10, 5, seed);

    MipOptions with_cuts;
    with_cuts.relative_gap = 0.0;
    with_cuts.absolute_gap = 1e-9;
    MipOptions without_cuts = with_cuts;
    without_cuts.cuts.enable = false;
    MipStats stats_on, stats_off;
    const Solution on = SolveMip(m, with_cuts, &stats_on);
    const Solution off = SolveMip(m, without_cuts, &stats_off);
    ASSERT_EQ(on.status, SolveStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(off.status, SolveStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(on.objective, off.objective, 1e-6) << "seed " << seed;
    EXPECT_LE(stats_on.cuts_active, stats_on.cuts_generated);
    total_generated += stats_on.cuts_generated;
  }
  // Not every seed separates a cut, but the family must fire somewhere.
  EXPECT_GT(total_generated, 0);
}

// Warm (incremental) and cold (dense) node-LP configurations must receive
// bit-identical cut sets — AddRootCuts runs its own engine either way — so
// the perturbation-pinned trees stay identical.
TEST(AddRootCutsTest, CutSetIndependentOfNodeLpEngine) {
  const Model m = testing::PlacementModel(12, 6, 11);
  MipOptions warm;
  warm.use_incremental_lp = true;
  MipOptions cold = warm;
  cold.use_incremental_lp = false;
  MipStats warm_stats, cold_stats;
  const Solution a = SolveMip(m, warm, &warm_stats);
  const Solution b = SolveMip(m, cold, &cold_stats);
  ASSERT_EQ(a.status, SolveStatus::kOptimal);
  ASSERT_EQ(b.status, SolveStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
  EXPECT_EQ(warm_stats.cuts_generated, cold_stats.cuts_generated);
  EXPECT_EQ(warm_stats.cuts_active, cold_stats.cuts_active);
  EXPECT_EQ(warm_stats.cut_rounds, cold_stats.cut_rounds);
  EXPECT_EQ(warm_stats.nodes_explored, cold_stats.nodes_explored);
}

TEST(AddRootCutsTest, DisabledLeavesModelUntouched) {
  Model m = testing::PlacementModel(10, 5, 3);
  const int rows_before = m.num_rows();
  MipOptions options;
  options.cuts.enable = false;
  RootCutStats stats;
  AddRootCuts(m, options, &stats);
  EXPECT_EQ(m.num_rows(), rows_before);
  EXPECT_EQ(stats.generated, 0);
  EXPECT_EQ(stats.lp_solves, 0);
}

TEST(AddRootCutsTest, CountsDualPivotsFromTheCutLoop) {
  Model m = testing::PlacementModel(12, 6, 5);
  MipOptions options;
  RootCutStats stats;
  AddRootCuts(m, options, &stats);
  ASSERT_GT(stats.generated, 0);
  // Each accepted cut is repaired by the dual simplex on the extended basis:
  // the loop must be exercising the dual warm-restart path, not cold primal
  // re-solves.
  EXPECT_GT(stats.dual_pivots, 0);
  EXPECT_GE(stats.pivots, stats.dual_pivots);
}

TEST(PseudoCostTest, StrongBranchInitObservesBothDirections) {
  const Model m = testing::PlacementModel(10, 5, 7);
  MipOptions options;  // branching defaults to kPseudoCost
  PseudoCosts pc;
  StrongBranchStats stats;
  InitPseudoCostsAtRoot(m, options, &pc, &stats);
  ASSERT_FALSE(pc.empty());
  EXPECT_GT(stats.lp_solves, 0);
  // Every strong-branched candidate contributes a down and an up
  // observation (kOptimal or kInfeasible children both count).
  int observed = 0;
  for (int j = 0; j < m.num_variables(); ++j) {
    if (pc.down_count[static_cast<size_t>(j)] > 0 ||
        pc.up_count[static_cast<size_t>(j)] > 0) {
      ++observed;
      EXPECT_GE(pc.Average(j, false), 0.0);
      EXPECT_GE(pc.Average(j, true), 0.0);
    }
  }
  EXPECT_GT(observed, 0);
  EXPECT_LE(observed, options.strong_branch_candidates);
}

TEST(PseudoCostTest, MostFractionalRuleSkipsInitialization) {
  const Model m = testing::PlacementModel(10, 5, 7);
  MipOptions options;
  options.branching = BranchingRule::kMostFractional;
  PseudoCosts pc;
  StrongBranchStats stats;
  InitPseudoCostsAtRoot(m, options, &pc, &stats);
  EXPECT_EQ(stats.lp_solves, 0);
  for (int j = 0; j < m.num_variables(); ++j) {
    EXPECT_EQ(pc.down_count[static_cast<size_t>(j)], 0);
    EXPECT_EQ(pc.up_count[static_cast<size_t>(j)], 0);
  }
}

TEST(PseudoCostTest, BothBranchingRulesReachTheSameOptimum) {
  for (const uint64_t seed : {3ULL, 7ULL, 13ULL}) {
    const Model m = testing::PlacementModel(12, 6, seed);
    MipOptions pseudo;
    pseudo.branching = BranchingRule::kPseudoCost;
    MipOptions frac;
    frac.branching = BranchingRule::kMostFractional;
    const Solution a = SolveMip(m, pseudo);
    const Solution b = SolveMip(m, frac);
    ASSERT_EQ(a.status, SolveStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(b.status, SolveStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "seed " << seed;
  }
}

TEST(PseudoCostTest, UpdateAndAverageCascade) {
  PseudoCosts pc;
  pc.Resize(3);
  EXPECT_DOUBLE_EQ(pc.Average(0, false), 1.0);  // no data anywhere: unit
  pc.Update(1, /*up=*/false, 4.0);
  EXPECT_DOUBLE_EQ(pc.Average(1, false), 4.0);  // own observation wins
  // Var 0 has no down observations: falls back to the global down average.
  EXPECT_DOUBLE_EQ(pc.Average(0, false), 4.0);
  pc.Update(1, /*up=*/false, 2.0);
  EXPECT_DOUBLE_EQ(pc.Average(1, false), 3.0);
  // Negative gains (dual bound cannot improve downward) clamp to zero.
  pc.Update(2, /*up=*/true, -5.0);
  EXPECT_DOUBLE_EQ(pc.Average(2, true), 0.0);
}

}  // namespace
}  // namespace medea::solver::internal
