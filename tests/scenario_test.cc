// Tests for the scenario-file format: a full mixed scenario, each action
// kind, time-suffix parsing, and error reporting with line numbers.

#include <gtest/gtest.h>

#include "src/sim/scenario.h"

namespace medea {
namespace {

TEST(ScenarioTest, FullMixedScenario) {
  const char* text = R"(# shared cluster demo
cluster nodes=24 racks=4 service_units=4 capacity_mb=16384 capacity_cores=8
scheduler medea-ilp interval_ms=10000 pool=24
conflict kill

at 0s lra hbase app=1 workers=4
at 0s lra generic app=2 tag=svc count=3 mem=2048 cores=1
at 0s constraint app=2 {svc, {svc, 0, 0}, node}
at 15s tasks count=6 mem=1024 cores=1 duration_ms=20000
at 40s remove app=1
run until=60s
)";
  auto outcome = RunScenario(text);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->metrics.lras_placed, 2);
  EXPECT_EQ(outcome->violated_subjects, 0);
  EXPECT_EQ(outcome->end_time_ms, 60000);
  EXPECT_GT(outcome->memory_utilization, 0.0);
  const std::string summary = outcome->Summary();
  EXPECT_NE(summary.find("LRAs placed/rejected:  2 / 0"), std::string::npos);
}

TEST(ScenarioTest, NodeFailureActions) {
  const char* text = R"(cluster nodes=8 racks=2 service_units=2
scheduler medea-nc pool=8
at 0s lra generic app=1 tag=a count=2 mem=1024 cores=1
at 20s node-down 0
at 20s node-down 1
at 30s node-up 0
run until=60s
)";
  auto outcome = RunScenario(text);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->metrics.lras_placed, 1);
}

TEST(ScenarioTest, MillisecondTimes) {
  const char* text = R"(cluster nodes=4 racks=2 service_units=2
scheduler serial pool=4
at 500ms tasks count=1 mem=512 cores=1 duration_ms=1000
run until=5000
)";
  auto outcome = RunScenario(text);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->end_time_ms, 5000);
}

TEST(ScenarioTest, MigrationLineAccepted) {
  const char* text = R"(cluster nodes=8 racks=2 service_units=2
scheduler medea-ilp pool=8
migration every_ms=5000 cost=0.1
at 0s lra generic app=1 tag=a count=2 mem=1024 cores=1
run until=30s
)";
  EXPECT_TRUE(RunScenario(text).ok());
}

TEST(ScenarioTest, ErrorsNameTheLine) {
  const char* text = "cluster nodes=4\nscheduler serial\nat 1s frobnicate 3\nrun until=2s\n";
  const auto outcome = RunScenario(text);
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.status().message().find("line 3"), std::string::npos);
}

TEST(ScenarioTest, MissingSectionsRejected) {
  EXPECT_FALSE(RunScenario("scheduler serial\nrun until=1s\n").ok());   // no cluster
  EXPECT_FALSE(RunScenario("cluster nodes=4\nrun until=1s\n").ok());    // no scheduler
  EXPECT_FALSE(RunScenario("cluster nodes=4\nscheduler serial\n").ok());  // no run
  EXPECT_FALSE(RunScenario("cluster nodes=4\nscheduler nope\nrun until=1s\n").ok());
}

TEST(ScenarioTest, BadConstraintReported) {
  const char* text = R"(cluster nodes=4 racks=2 service_units=2
scheduler serial
at 0s constraint app=1 {broken
run until=1s
)";
  const auto outcome = RunScenario(text);
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.status().message().find("line 3"), std::string::npos);
}

TEST(ScenarioTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/medea_scenario.txt";
  std::FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fputs("cluster nodes=4 racks=2 service_units=2\nscheduler serial pool=4\n"
             "at 0s lra generic app=1 tag=a count=1 mem=512 cores=1\nrun until=15s\n",
             file);
  std::fclose(file);
  auto outcome = RunScenarioFile(path);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->metrics.lras_placed, 1);
  EXPECT_FALSE(RunScenarioFile("/nonexistent/path.txt").ok());
}

}  // namespace
}  // namespace medea
