// Copyright (c) Medea reproduction authors.
// Concurrency test for the observability layer, designed to run under
// ThreadSanitizer (the `tsan` preset filter matches "ThreadTest"). Several
// writer threads hammer counters, gauges, histograms and the trace ring
// while reader threads concurrently snapshot, export JSON lines and write
// Chrome traces — plus a toggler flipping the enabled flags mid-flight, the
// exact races the relaxed-load fast path must survive.
// medea-lint: allow-file(raw-sync): deliberate raw std::thread use — this TSan hammer
// must race the obs layer without the sync wrappers' own synchronization in the way.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace medea::obs {
namespace {

TEST(ObsThreadTest, ConcurrentWritersReadersAndTogglesAreClean) {
  EnableMetrics(true);
  MetricsRegistry::Default().Reset();
  TraceRecorder::Default().Enable(256);  // small ring: wraparound races too

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 400;
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  // Writers: every helper on a mix of shared and per-thread metric names.
  for (int w = 0; w < kWriters; ++w) {
    workers.emplace_back([w] {
      SetCurrentThreadName("obs-writer-" + std::to_string(w));
      const std::string own = "obs_thread_test.writer_" + std::to_string(w);
      for (int i = 0; i < kOpsPerWriter; ++i) {
        Count("obs_thread_test.shared_counter");
        Count(own);
        SetGauge("obs_thread_test.shared_gauge", static_cast<double>(i));
        Observe("obs_thread_test.shared_hist_ms", 0.001 * (1 + (w * kOpsPerWriter + i) % 997));
        { ScopedLatencyTimer timer("obs_thread_test.timer_ms"); }
        { ScopedSpan span("obs_thread_test.span", "test"); }
      }
    });
  }
  // Readers: consistent snapshots and exports while writes are in flight.
  workers.emplace_back([&stop] {
    int iteration = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const auto snapshot = MetricsRegistry::Default()
                                .HistogramNamed("obs_thread_test.shared_hist_ms")
                                .TakeSnapshot();
      // Sanity under concurrency: the aggregates are internally consistent.
      if (snapshot.count > 0) {
        EXPECT_GE(snapshot.max_ms, snapshot.min_ms);
        EXPECT_GE(snapshot.p99, snapshot.p50);
      }
      (void)MetricsRegistry::Default().SnapshotJsonLines();
      (void)TraceRecorder::Default().Snapshot();
      (void)TraceRecorder::Default().dropped();
      if (++iteration % 8 == 0) {
        const std::string path =
            ::testing::TempDir() + "/obs_thread_test_trace.json";
        (void)TraceRecorder::Default().WriteChromeTrace(path);
        std::remove(path.c_str());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Toggler: instrumentation sites must tolerate the flags flipping at any
  // point (the disabled fast path racing against in-flight recordings).
  workers.emplace_back([&stop] {
    while (!stop.load(std::memory_order_acquire)) {
      EnableMetrics(false);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      EnableMetrics(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (int w = 0; w < kWriters; ++w) {
    workers[static_cast<size_t>(w)].join();
  }
  stop.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < workers.size(); ++i) {
    workers[i].join();
  }

  EnableMetrics(true);
  // Per-writer counters only race against the toggler, so each is at most
  // kOpsPerWriter; the shared counter is the sum of whatever landed.
  long long own_total = 0;
  for (int w = 0; w < kWriters; ++w) {
    const long long value = MetricsRegistry::Default()
                                .CounterNamed("obs_thread_test.writer_" + std::to_string(w))
                                .value();
    EXPECT_GT(value, 0);
    EXPECT_LE(value, kOpsPerWriter);
    own_total += value;
  }
  EXPECT_EQ(MetricsRegistry::Default().CounterNamed("obs_thread_test.shared_counter").value(),
            own_total);
  const auto hist =
      MetricsRegistry::Default().HistogramNamed("obs_thread_test.shared_hist_ms").TakeSnapshot();
  EXPECT_GT(hist.count, 0u);
  EXPECT_LE(hist.count, static_cast<size_t>(kWriters) * kOpsPerWriter);

  // The trace ring wrapped (far more spans than capacity) without losing
  // structural integrity: full ring, monotone non-negative durations.
  const auto spans = TraceRecorder::Default().Snapshot();
  EXPECT_EQ(spans.size(), 256u);
  for (const TraceEvent& span : spans) {
    EXPECT_GE(span.duration_us, 0);
    EXPECT_GE(span.tid, 1u);
  }
  EXPECT_GT(TraceRecorder::Default().dropped(), 0u);

  EnableMetrics(false);
  TraceRecorder::Default().Disable();
}

TEST(ObsThreadTest, ConcurrentRegistrationReturnsOneInstancePerName) {
  EnableMetrics(true);
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &seen] {
      seen[static_cast<size_t>(t)] =
          &MetricsRegistry::Default().CounterNamed("obs_thread_test.registration_race");
      seen[static_cast<size_t>(t)]->Add(1);
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);  // one shared instance
  }
  EXPECT_EQ(seen[0]->value(), kThreads);
  EnableMetrics(false);
}

}  // namespace
}  // namespace medea::obs
