// Tests for the workload generators: LRA templates (§7.1 shapes and
// constraints), the GridMix-like batch generator, and the Google-trace-like
// short-task stream.

#include <gtest/gtest.h>

#include <memory>

#include "src/cluster/node_group.h"
#include "src/core/constraint_manager.h"
#include "src/workload/google_trace.h"
#include "src/workload/gridmix.h"
#include "src/workload/lra_templates.h"

namespace medea {
namespace {

TEST(LraTemplatesTest, HBaseShape) {
  TagPool tags;
  const auto spec = MakeHBaseInstance(ApplicationId(3), tags, 10);
  // 10 workers + master + thrift + secondary.
  EXPECT_EQ(spec.request.containers.size(), 13u);
  int workers = 0;
  const TagId hb_rs = tags.Find("hb_rs");
  ASSERT_TRUE(hb_rs.IsValid());
  for (const auto& c : spec.request.containers) {
    if (std::find(c.tags.begin(), c.tags.end(), hb_rs) != c.tags.end()) {
      ++workers;
      EXPECT_EQ(c.demand, Resource(2048, 1));
    }
  }
  EXPECT_EQ(workers, 10);
  // 3 app constraints + 1 shared cardinality.
  EXPECT_EQ(spec.app_constraints.size(), 3u);
  EXPECT_EQ(spec.shared_constraints.size(), 1u);
}

TEST(LraTemplatesTest, HBaseConstraintsParse) {
  auto groups = std::make_shared<NodeGroupRegistry>(8);
  ASSERT_TRUE(groups->RegisterPartition(kNodeGroupRack, {0, 0, 0, 0, 1, 1, 1, 1}).ok());
  ConstraintManager manager(groups);
  const auto spec = MakeHBaseInstance(ApplicationId(3), manager.tags(), 10);
  for (const auto& text : spec.app_constraints) {
    EXPECT_TRUE(
        manager.AddFromText(text, ConstraintOrigin::kApplication, ApplicationId(3)).ok())
        << text;
  }
  for (const auto& text : spec.shared_constraints) {
    EXPECT_TRUE(manager.AddFromText(text, ConstraintOrigin::kOperator).ok()) << text;
  }
  EXPECT_EQ(manager.size(), 4u);
}

TEST(LraTemplatesTest, TensorFlowShape) {
  TagPool tags;
  const auto spec = MakeTensorFlowInstance(ApplicationId(5), tags, 8, 2);
  EXPECT_EQ(spec.request.containers.size(), 11u);  // 8 workers + 2 ps + chief
  const TagId chief = tags.Find("tf_chief");
  int chiefs = 0;
  for (const auto& c : spec.request.containers) {
    if (std::find(c.tags.begin(), c.tags.end(), chief) != c.tags.end()) {
      ++chiefs;
      EXPECT_EQ(c.demand, Resource(4096, 1));  // <4 GB, 1 CPU> per §7.1
    }
  }
  EXPECT_EQ(chiefs, 1);
}

TEST(LraTemplatesTest, AppIdTagAttached) {
  TagPool tags;
  const auto spec = MakeGenericLra(ApplicationId(42), tags, 3, "svc");
  const TagId app_tag = tags.Find("appID:42");
  ASSERT_TRUE(app_tag.IsValid());
  for (const auto& c : spec.request.containers) {
    EXPECT_NE(std::find(c.tags.begin(), c.tags.end(), app_tag), c.tags.end());
  }
}

TEST(LraTemplatesTest, ConstraintsOptional) {
  TagPool tags;
  const auto spec = MakeHBaseInstance(ApplicationId(3), tags, 10, /*with_constraints=*/false);
  EXPECT_TRUE(spec.app_constraints.empty());
  EXPECT_TRUE(spec.shared_constraints.empty());
}

TEST(GridMixTest, JobShapesWithinBounds) {
  GridMixConfig config;
  GridMixGenerator gen(config, 11);
  for (int i = 0; i < 50; ++i) {
    const auto job = gen.NextJob();
    EXPECT_GE(job.size(), 1u);
    for (const auto& task : job) {
      EXPECT_GE(task.duration_ms, config.min_duration_ms);
      EXPECT_LE(task.duration_ms, config.max_duration_ms);
      EXPECT_EQ(task.demand, config.task_demand);
    }
  }
}

TEST(GridMixTest, MemoryFractionTargetReached) {
  GridMixConfig config;
  GridMixGenerator gen(config, 12);
  const Resource total(1000 * 1024, 1000);
  const auto jobs = gen.JobsForMemoryFraction(total, 0.5);
  double mb = 0;
  for (const auto& job : jobs) {
    for (const auto& task : job) {
      mb += static_cast<double>(task.demand.memory_mb);
    }
  }
  EXPECT_GE(mb, 0.5 * 1000 * 1024);
  // Should not overshoot by more than one job.
  EXPECT_LE(mb, 0.5 * 1000 * 1024 + 400 * 1024);
}

TEST(GridMixTest, DeterministicPerSeed) {
  GridMixGenerator a(GridMixConfig{}, 7);
  GridMixGenerator b(GridMixConfig{}, 7);
  for (int i = 0; i < 10; ++i) {
    const auto ja = a.NextJob();
    const auto jb = b.NextJob();
    ASSERT_EQ(ja.size(), jb.size());
    for (size_t t = 0; t < ja.size(); ++t) {
      EXPECT_EQ(ja[t].duration_ms, jb[t].duration_ms);
    }
  }
}

TEST(GoogleTraceTest, ArrivalsSortedAndWithinHorizon) {
  GoogleTraceGenerator gen(GoogleTraceConfig{}, 13);
  const SimTimeMs horizon = 60'000;
  const auto arrivals = gen.Generate(horizon);
  ASSERT_FALSE(arrivals.empty());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_LT(arrivals[i].time, horizon);
    EXPECT_GE(arrivals[i].task.duration_ms, 100);
    if (i > 0) {
      EXPECT_GE(arrivals[i].time, arrivals[i - 1].time);
    }
  }
}

TEST(GoogleTraceTest, SpeedupCompressesDurations) {
  GoogleTraceConfig slow;
  slow.speedup = 1.0;
  GoogleTraceConfig fast;
  fast.speedup = 200.0;
  GoogleTraceGenerator gs(slow, 17);
  GoogleTraceGenerator gf(fast, 17);
  const auto a_slow = gs.Generate(10'000);
  const auto a_fast = gf.Generate(10'000);
  // 200x speedup packs ~200x the trace time into the same horizon.
  EXPECT_GT(a_fast.size(), a_slow.size() * 50);
}

TEST(GoogleTraceTest, BurstsCreateVariance) {
  GoogleTraceGenerator gen(GoogleTraceConfig{}, 19);
  const auto arrivals = gen.Generate(120'000);
  // Bucket arrivals per second of sim time; bursty traffic should yield an
  // index of dispersion (var/mean) well above Poisson's 1.
  std::vector<double> buckets(120, 0.0);
  for (const auto& a : arrivals) {
    ++buckets[static_cast<size_t>(a.time / 1000)];
  }
  double mean = 0;
  for (double b : buckets) {
    mean += b;
  }
  mean /= static_cast<double>(buckets.size());
  double var = 0;
  for (double b : buckets) {
    var += (b - mean) * (b - mean);
  }
  var /= static_cast<double>(buckets.size());
  ASSERT_GT(mean, 0.0);
  EXPECT_GT(var / mean, 1.5);
}

}  // namespace
}  // namespace medea
