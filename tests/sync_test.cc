// Copyright (c) Medea reproduction authors.
// Semantics of the annotated sync primitives (src/common/sync): mutual
// exclusion, condvar wakeups and timeouts, thread naming and join-on-
// destruction. The *static* guarantees (GUARDED_BY etc.) are exercised by
// the clang -Werror=thread-safety build and the negative compile test; this
// file checks the runtime behavior the annotations describe.
// medea-lint: allow-file(raw-sync): this file tests the sync wrappers themselves, so
// it needs raw std::thread as the independent reference implementation.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/sync/mutex.h"
#include "src/common/sync/thread.h"
#include "src/common/sync/work_queue.h"

namespace medea::sync {
namespace {

TEST(MutexTest, ProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  MutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockFailsWhenHeld) {
  Mutex mu;
  mu.Lock();
  std::thread other([&] {
    EXPECT_FALSE(mu.TryLock());
  });
  other.join();
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVarTest, SignalWakesWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) {
      cv.Wait(&mu);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  {
    MutexLock lock(&mu);
    ready = true;
    cv.Signal();
  }
  waiter.join();
}

TEST(CondVarTest, WaitForTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(cv.WaitFor(&mu, std::chrono::milliseconds(20)));
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(15));
}

TEST(ThreadTest, RunsBodyAndJoins) {
  std::atomic<bool> ran{false};
  {
    Thread thread("sync-test", [&] { ran.store(true); });
    EXPECT_EQ(thread.name(), "sync-test");
  }  // join-on-destruction
  EXPECT_TRUE(ran.load());
}

TEST(ThreadTest, JoinIsIdempotentAndSafeOnEmptyThread) {
  Thread empty;
  empty.Join();  // never started: no-op
  Thread thread("sync-test-2", [] {});
  thread.Join();
  thread.Join();  // second join: no-op
  EXPECT_FALSE(thread.Joinable());
}

TEST(ThreadTest, MoveAssignJoinsPreviousThread) {
  std::atomic<int> done{0};
  Thread thread("first", [&] { done.fetch_add(1); });
  thread = Thread("second", [&] { done.fetch_add(1); });
  // "first" must have been joined by the move-assignment.
  EXPECT_GE(done.load(), 1);
  thread.Join();
  EXPECT_EQ(done.load(), 2);
}

TEST(WorkQueueTest, OwnerLifoThiefFifoSemantics) {
  WorkStealingDeque<int> deque;
  deque.PushTop(1);
  deque.PushTop(2);
  deque.PushTop(3);
  EXPECT_EQ(deque.Size(), 3u);

  int item = 0;
  // Owner pops the newest (LIFO: diving).
  ASSERT_TRUE(deque.PopTop(&item));
  EXPECT_EQ(item, 3);
  // Thief steals the oldest (FIFO: the shallowest, biggest subtree).
  ASSERT_TRUE(deque.TrySteal(&item));
  EXPECT_EQ(item, 1);
  // Owner can also offload from the bottom.
  ASSERT_TRUE(deque.PopBottom(&item));
  EXPECT_EQ(item, 2);

  EXPECT_FALSE(deque.PopTop(&item));
  EXPECT_FALSE(deque.PopBottom(&item));
  EXPECT_FALSE(deque.TrySteal(&item));
  EXPECT_EQ(deque.Size(), 0u);
}

}  // namespace
}  // namespace medea::sync
