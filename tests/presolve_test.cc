// Tests for the solver presolve pass and the LP-format writer, including a
// randomized equivalence property (presolved model has the same optimum).

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/solver/lp_writer.h"
#include "src/solver/mip.h"
#include "src/solver/presolve.h"
#include "src/solver/testing/placement_model.h"

namespace medea::solver {
namespace {

TEST(PresolveTest, SingletonRowBecomesBound) {
  Model m;
  const int x = m.AddContinuous(0, 100, 1, "x");
  m.AddRow({{x, 2.0}}, RowSense::kLessEqual, 10.0);  // x <= 5
  PresolveStats stats;
  const Model reduced = Presolved(m, &stats);
  EXPECT_EQ(stats.singleton_rows, 1);
  EXPECT_EQ(reduced.num_rows(), 0);
  EXPECT_DOUBLE_EQ(reduced.column(x).upper, 5.0);
}

TEST(PresolveTest, NegativeCoefficientSingleton) {
  Model m;
  const int x = m.AddContinuous(0, 100, 1, "x");
  m.AddRow({{x, -1.0}}, RowSense::kLessEqual, -3.0);  // -x <= -3  =>  x >= 3
  PresolveStats stats;
  const Model reduced = Presolved(m, &stats);
  EXPECT_DOUBLE_EQ(reduced.column(x).lower, 3.0);
}

TEST(PresolveTest, IntegerBoundsRoundInward) {
  Model m;
  const int x = m.AddVariable(0, 100, 1, VarType::kInteger, "x");
  m.AddRow({{x, 2.0}}, RowSense::kLessEqual, 9.0);  // x <= 4.5 -> 4
  const Model reduced = Presolved(m);
  EXPECT_DOUBLE_EQ(reduced.column(x).upper, 4.0);
}

TEST(PresolveTest, RedundantRowDropped) {
  Model m;
  const int x = m.AddContinuous(0, 1, 1, "x");
  const int y = m.AddContinuous(0, 1, 1, "y");
  m.AddRow({{x, 1}, {y, 1}}, RowSense::kLessEqual, 5.0);  // max activity 2 <= 5
  PresolveStats stats;
  const Model reduced = Presolved(m, &stats);
  EXPECT_EQ(stats.redundant_rows, 1);
  EXPECT_EQ(reduced.num_rows(), 0);
}

TEST(PresolveTest, BindingRowKept) {
  Model m;
  const int x = m.AddContinuous(0, 10, 1, "x");
  const int y = m.AddContinuous(0, 10, 1, "y");
  m.AddRow({{x, 1}, {y, 1}}, RowSense::kLessEqual, 5.0);
  const Model reduced = Presolved(m);
  EXPECT_EQ(reduced.num_rows(), 1);
}

TEST(PresolveTest, ActivityInfeasibilityDetected) {
  Model m;
  const int x = m.AddContinuous(0, 1, 1, "x");
  const int y = m.AddContinuous(0, 1, 1, "y");
  m.AddRow({{x, 1}, {y, 1}}, RowSense::kGreaterEqual, 5.0);  // max activity 2 < 5
  PresolveStats stats;
  Presolved(m, &stats);
  EXPECT_TRUE(stats.proven_infeasible);
  // And the MIP path reports it.
  EXPECT_EQ(SolveMip(m).status, SolveStatus::kInfeasible);
}

TEST(PresolveTest, ConflictingSingletonsInfeasible) {
  Model m;
  const int x = m.AddContinuous(0, 10, 1, "x");
  m.AddRow({{x, 1}}, RowSense::kGreaterEqual, 8.0);
  m.AddRow({{x, 1}}, RowSense::kLessEqual, 2.0);
  PresolveStats stats;
  Presolved(m, &stats);
  EXPECT_TRUE(stats.proven_infeasible);
}

// ---- 0/1 probing and clique rows -------------------------------------------

TEST(PresolveProbingTest, FixesBinaryThatOverflowsRowAlone) {
  // 5x + y <= 4: x = 1 pushes minimum activity to 5 > 4, so x must be 0.
  Model m;
  const int x = m.AddBinary(1.0, "x");
  const int y = m.AddBinary(1.0, "y");
  m.AddRow({{x, 5.0}, {y, 1.0}}, RowSense::kLessEqual, 4.0);
  PresolveStats stats;
  const Model reduced = Presolved(m, &stats);
  EXPECT_GE(stats.probed_fixings, 1);
  EXPECT_DOUBLE_EQ(reduced.column(x).upper, 0.0);
  EXPECT_DOUBLE_EQ(reduced.column(y).upper, 1.0);  // y untouched
}

TEST(PresolveProbingTest, NegativeCoefficientFixesToOne) {
  // -5x + 3y + 3z <= 2 with y, z fixed at 1: minimum activity without x's
  // relief is 6 > 2, so x must be 1.
  Model m;
  const int x = m.AddBinary(1.0, "x");
  const int y = m.AddBinary(1.0, "y");
  const int z = m.AddBinary(1.0, "z");
  m.AddRow({{x, -5.0}, {y, 3.0}, {z, 3.0}}, RowSense::kLessEqual, 2.0);
  m.AddRow({{y, 1.0}}, RowSense::kGreaterEqual, 1.0);  // y = 1 via singleton
  m.AddRow({{z, 1.0}}, RowSense::kGreaterEqual, 1.0);  // z = 1 via singleton
  PresolveStats stats;
  const Model reduced = Presolved(m, &stats);
  EXPECT_GE(stats.probed_fixings, 1);
  EXPECT_DOUBLE_EQ(reduced.column(x).lower, 1.0);
}

TEST(PresolveProbingTest, FixpointCascadesAcrossRows) {
  // Round 1 fixes x to 1 (via the >= row written as <=); with x = 1
  // consuming 3 of row two's capacity, round 2 proves y must be 0.
  Model m;
  const int x = m.AddBinary(1.0, "x");
  const int y = m.AddBinary(1.0, "y");
  m.AddRow({{x, -1.0}}, RowSense::kLessEqual, -1.0);            // x >= 1
  m.AddRow({{x, 3.0}, {y, 2.0}}, RowSense::kLessEqual, 4.0);    // then y = 0
  PresolveStats stats;
  const Model reduced = Presolved(m, &stats);
  EXPECT_DOUBLE_EQ(reduced.column(x).lower, 1.0);
  EXPECT_DOUBLE_EQ(reduced.column(y).upper, 0.0);
}

TEST(PresolveProbingTest, EmitsCliqueRowFromConflictingPrefix) {
  // 4a + 4b + 4c <= 7: any two of {a, b, c} conflict -> a + b + c <= 1.
  Model m;
  m.AddBinary(1.0, "a");
  m.AddBinary(1.0, "b");
  m.AddBinary(1.0, "c");
  m.AddRow({{0, 4.0}, {1, 4.0}, {2, 4.0}}, RowSense::kLessEqual, 7.0);
  PresolveStats stats;
  const Model reduced = Presolved(m, &stats);
  EXPECT_EQ(stats.clique_rows_added, 1);
  EXPECT_EQ(stats.probe_implications, 3);  // C(3, 2) pairs
  ASSERT_EQ(reduced.num_rows(), 2);
  const auto& clique = reduced.row(1);
  EXPECT_EQ(clique.name, "probe_clique");
  EXPECT_EQ(clique.sense, RowSense::kLessEqual);
  EXPECT_DOUBLE_EQ(clique.rhs, 1.0);
  EXPECT_EQ(clique.terms.size(), 3u);
}

TEST(PresolveProbingTest, CliqueDominatedByAssignmentRowIsSkipped) {
  // The all-ones row a + b + c <= 1 already states the clique: emitting it
  // again would only duplicate work for the LP.
  Model m;
  m.AddBinary(1.0, "a");
  m.AddBinary(1.0, "b");
  m.AddBinary(1.0, "c");
  m.AddRow({{0, 1.0}, {1, 1.0}, {2, 1.0}}, RowSense::kLessEqual, 1.0);
  m.AddRow({{0, 4.0}, {1, 4.0}, {2, 4.0}}, RowSense::kLessEqual, 7.0);
  PresolveStats stats;
  const Model reduced = Presolved(m, &stats);
  EXPECT_EQ(stats.clique_rows_added, 0);
}

// Satellite regression: presolve used to be a no-op on placement models
// (every counter zero on every bench tier). The capacity rows must now
// produce clique rows and pairwise implications across the bench corpus.
TEST(PresolveProbingTest, FiresOnTheBenchPlacementCorpus) {
  int models_with_cliques = 0;
  long long implications = 0;
  for (const auto [containers, nodes] :
       {std::pair(10, 5), std::pair(12, 6), std::pair(16, 8), std::pair(20, 10)}) {
    for (const uint64_t seed : {3ULL, 5ULL, 7ULL, 11ULL, 13ULL}) {
      const Model m = testing::PlacementModel(containers, nodes, seed);
      PresolveStats stats;
      const Model reduced = Presolved(m, &stats);
      EXPECT_FALSE(stats.proven_infeasible);
      if (stats.clique_rows_added > 0) {
        ++models_with_cliques;
      }
      implications += stats.probe_implications;
      EXPECT_EQ(reduced.num_rows(), m.num_rows() + stats.clique_rows_added);
    }
  }
  // The mem rows draw coefficients from (1, 4) against capacity 7: pairs
  // above 3.5 conflict, and across 20 models plenty of such pairs exist.
  EXPECT_GT(models_with_cliques, 0);
  EXPECT_GT(implications, 0);
}

// Property: presolve preserves the optimum on random models.
class PresolveEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PresolveEquivalence, SameOptimum) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 48271u + 5);
  Model m;
  const int n = static_cast<int>(rng.NextInt(3, 8));
  for (int j = 0; j < n; ++j) {
    m.AddVariable(0, rng.NextDouble(1, 6), rng.NextDouble(-4, 8),
                  rng.NextBool(0.5) ? VarType::kBinary : VarType::kContinuous);
  }
  const int rows = static_cast<int>(rng.NextInt(1, 6));
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> terms;
    const int width = static_cast<int>(rng.NextInt(1, n));
    for (int t = 0; t < width; ++t) {
      terms.emplace_back(static_cast<int>(rng.NextBounded(static_cast<uint64_t>(n))),
                         rng.NextDouble(0.2, 3.0));
    }
    m.AddRow(terms, rng.NextBool(0.5) ? RowSense::kLessEqual : RowSense::kGreaterEqual,
             rng.NextDouble(0, 8));
  }

  MipOptions raw;
  raw.presolve = false;
  MipOptions with;
  with.presolve = true;
  const Solution a = SolveMip(m, raw);
  const Solution b = SolveMip(m, with);
  ASSERT_EQ(a.HasSolution(), b.HasSolution()) << "case " << GetParam();
  if (a.HasSolution()) {
    EXPECT_NEAR(a.objective, b.objective, 1e-5) << "case " << GetParam();
    EXPECT_TRUE(m.IsFeasible(b.values, 1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PresolveEquivalence, ::testing::Range(0, 30));

// ---- LP writer --------------------------------------------------------------------

TEST(LpWriterTest, RendersAllSections) {
  Model m;
  const int x = m.AddBinary(3.0, "x_pick");
  const int y = m.AddVariable(0, 7, -1.5, VarType::kInteger, "y");
  const int z = m.AddContinuous(-2, 4, 0.0, "z");
  m.AddRow({{x, 1}, {y, 2}}, RowSense::kLessEqual, 5, "cap");
  m.AddRow({{y, 1}, {z, -1}}, RowSense::kEqual, 0, "link");
  const std::string lp = WriteLpFormat(m);
  EXPECT_NE(lp.find("Maximize"), std::string::npos);
  EXPECT_NE(lp.find("Subject To"), std::string::npos);
  EXPECT_NE(lp.find("x_pick"), std::string::npos);
  // Row names render verbatim; a collision suffix is appended only when two
  // rows sanitize to the same name (keeps write->parse->write idempotent).
  EXPECT_NE(lp.find("cap:"), std::string::npos);
  EXPECT_NE(lp.find("link:"), std::string::npos);
  EXPECT_NE(lp.find("<= 5"), std::string::npos);
  EXPECT_NE(lp.find("Bounds"), std::string::npos);
  EXPECT_NE(lp.find("General"), std::string::npos);
  EXPECT_NE(lp.find("Binary"), std::string::npos);
  EXPECT_NE(lp.find("End"), std::string::npos);
}

TEST(LpWriterTest, MinimizeAndNegativeCoefficients) {
  Model m;
  m.SetMaximize(false);
  const int x = m.AddContinuous(0, kInfinity, -2.5, "x");
  m.AddRow({{x, -1}}, RowSense::kGreaterEqual, -4, "r");
  const std::string lp = WriteLpFormat(m);
  EXPECT_NE(lp.find("Minimize"), std::string::npos);
  EXPECT_NE(lp.find("- 2.5 x"), std::string::npos);
  EXPECT_NE(lp.find(">= -4"), std::string::npos);
}

TEST(LpWriterTest, SanitizesNames) {
  Model m;
  m.AddContinuous(0, 1, 1, "x 0:weird&name");
  m.AddContinuous(0, 1, 1, "");       // unnamed
  m.AddContinuous(0, 1, 1, "9starts_with_digit");
  const std::string lp = WriteLpFormat(m);
  EXPECT_EQ(lp.find("weird&"), std::string::npos);
  EXPECT_NE(lp.find("x_0_weird_name"), std::string::npos);
  EXPECT_NE(lp.find("x9starts_with_digit"), std::string::npos);
}

TEST(LpWriterTest, WritesFile) {
  Model m;
  m.AddBinary(1, "x");
  const std::string path = ::testing::TempDir() + "/medea_model.lp";
  ASSERT_TRUE(WriteLpFile(m, path).ok());
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char buffer[16] = {};
  ASSERT_GT(std::fread(buffer, 1, 8, file), 0u);
  std::fclose(file);
  EXPECT_EQ(std::string(buffer, 8), "Maximize");
}

}  // namespace
}  // namespace medea::solver
