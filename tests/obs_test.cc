// Copyright (c) Medea reproduction authors.
// Unit tests for the observability layer: histogram bucket / percentile
// math, registry semantics and JSON-lines export, trace ring-buffer
// wraparound, and the zero-cost-when-disabled contract of the RAII helpers.

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace medea::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EnableMetrics(true);
    MetricsRegistry::Default().Reset();
  }
  void TearDown() override {
    EnableMetrics(false);
    TraceRecorder::Default().Disable();
  }
};

// --- Histogram bucket math --------------------------------------------------

TEST_F(ObsTest, BucketUppersAreGeometricWithRatioSqrt2) {
  // upper(0) = 1us, and every two buckets double the bound.
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperMs(0), 0.001);
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperMs(2), 0.002);
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperMs(20), 0.001 * 1024);
  for (size_t i = 0; i + 2 < LatencyHistogram::kNumBuckets - 1; ++i) {
    EXPECT_NEAR(LatencyHistogram::BucketUpperMs(i + 2) / LatencyHistogram::BucketUpperMs(i),
                2.0, 1e-12)
        << "at bucket " << i;
  }
  // The last bucket is open-ended.
  EXPECT_TRUE(std::isinf(LatencyHistogram::BucketUpperMs(LatencyHistogram::kNumBuckets - 1)));
}

TEST_F(ObsTest, BucketIndexBoundariesAreInclusive) {
  // A sample exactly on upper(i) belongs to bucket i, epsilon above to i+1.
  for (size_t i = 0; i < 10; ++i) {
    const double upper = LatencyHistogram::BucketUpperMs(i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(upper), i) << "upper(" << i << ")";
    EXPECT_EQ(LatencyHistogram::BucketIndex(upper * 1.0001), i + 1) << "above upper(" << i << ")";
  }
}

TEST_F(ObsTest, BucketIndexHandlesDegenerateSamples) {
  EXPECT_EQ(LatencyHistogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(-5.0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(std::numeric_limits<double>::quiet_NaN()), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1e-9), 0u);  // below 1us -> first bucket
  // Far beyond the ~50 minute span -> last (open) bucket.
  EXPECT_EQ(LatencyHistogram::BucketIndex(1e12), LatencyHistogram::kNumBuckets - 1);
}

// --- Percentiles and snapshot math ------------------------------------------

TEST_F(ObsTest, SnapshotTracksExactCountSumMinMax) {
  LatencyHistogram h;
  h.Record(1.0);
  h.Record(4.0);
  h.Record(0.25);
  const auto s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum_ms, 5.25);
  EXPECT_DOUBLE_EQ(s.min_ms, 0.25);
  EXPECT_DOUBLE_EQ(s.max_ms, 4.0);
  EXPECT_DOUBLE_EQ(s.MeanMs(), 1.75);
}

TEST_F(ObsTest, PercentilesAreWithinOneBucketOfExact) {
  // 1000 samples uniform on (0, 100] ms: each percentile estimate must land
  // within one sqrt(2) bucket of the exact order statistic.
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(i * 0.1);
  }
  const auto s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_GE(s.p50, 50.0 / std::sqrt(2.0));
  EXPECT_LE(s.p50, 50.0 * std::sqrt(2.0));
  EXPECT_GE(s.p95, 95.0 / std::sqrt(2.0));
  EXPECT_LE(s.p95, 95.0 * std::sqrt(2.0));
  EXPECT_GE(s.p99, 99.0 / std::sqrt(2.0));
  EXPECT_LE(s.p99, 100.0);  // clamped to max_ms
}

TEST_F(ObsTest, PercentilesClampToObservedRange) {
  LatencyHistogram h;
  // All mass in one bucket: interpolation would report bucket bounds, but
  // the estimate must clamp to the observed [min, max].
  h.Record(3.0);
  h.Record(3.0);
  h.Record(3.0);
  const auto s = h.TakeSnapshot();
  EXPECT_DOUBLE_EQ(s.PercentileMs(0.0), 3.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_DOUBLE_EQ(s.PercentileMs(100.0), 3.0);
}

TEST_F(ObsTest, PercentileOfEmptyHistogramIsZero) {
  LatencyHistogram h;
  const auto s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.PercentileMs(99.9), 0.0);
  EXPECT_DOUBLE_EQ(s.MeanMs(), 0.0);
}

TEST_F(ObsTest, PercentileInOpenLastBucketReportsMax) {
  LatencyHistogram h;
  h.Record(1e9);  // ~11.5 days -> open bucket
  const auto s = h.TakeSnapshot();
  EXPECT_DOUBLE_EQ(s.p99, 1e9);
}

// --- Registry ---------------------------------------------------------------

TEST_F(ObsTest, RegistryHandlesAreStableAcrossReset) {
  auto& registry = MetricsRegistry::Default();
  Counter& counter = registry.CounterNamed("obs_test.stable_counter");
  counter.Add(7);
  EXPECT_EQ(counter.value(), 7);
  registry.Reset();
  EXPECT_EQ(counter.value(), 0);  // zeroed in place, handle still valid
  counter.Add(2);
  EXPECT_EQ(registry.CounterNamed("obs_test.stable_counter").value(), 2);
  EXPECT_EQ(&registry.CounterNamed("obs_test.stable_counter"), &counter);
}

TEST_F(ObsTest, HelpersNoOpWhenDisabled) {
  EnableMetrics(false);
  Count("obs_test.disabled_counter", 5);
  Observe("obs_test.disabled_hist", 1.0);
  SetGauge("obs_test.disabled_gauge", 9.0);
  { ScopedLatencyTimer timer("obs_test.disabled_timer"); }
  EnableMetrics(true);
  // Nothing was recorded — and ideally not even registered. The counter may
  // not exist; if the name is now created fresh it must read zero.
  EXPECT_EQ(MetricsRegistry::Default().CounterNamed("obs_test.disabled_counter").value(), 0);
  EXPECT_EQ(MetricsRegistry::Default().HistogramNamed("obs_test.disabled_hist").TakeSnapshot().count,
            0u);
}

TEST_F(ObsTest, SnapshotJsonLinesIsOneObjectPerLineSorted) {
  Count("obs_test.b_counter", 3);
  Count("obs_test.a_counter", 1);
  SetGauge("obs_test.gauge", 2.5);
  Observe("obs_test.hist_ms", 1.5);
  const std::string lines = MetricsRegistry::Default().SnapshotJsonLines();
  // Counters come first, sorted by name.
  EXPECT_NE(lines.find("{\"kind\":\"counter\",\"name\":\"obs_test.a_counter\",\"value\":1}"),
            std::string::npos);
  EXPECT_LT(lines.find("obs_test.a_counter"), lines.find("obs_test.b_counter"));
  EXPECT_NE(lines.find("{\"kind\":\"gauge\",\"name\":\"obs_test.gauge\",\"value\":2.5}"),
            std::string::npos);
  EXPECT_NE(lines.find("\"kind\":\"histogram\",\"name\":\"obs_test.hist_ms\",\"count\":1"),
            std::string::npos);
  // Every line parses as a braced object.
  size_t begin = 0;
  int parsed = 0;
  while (begin < lines.size()) {
    const size_t end = lines.find('\n', begin);
    ASSERT_NE(end, std::string::npos);
    const std::string line = lines.substr(begin, end - begin);
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++parsed;
    begin = end + 1;
  }
  EXPECT_GE(parsed, 4);
}

// --- Trace ring buffer ------------------------------------------------------

TraceEvent MakeEvent(const char* name, int64_t start_us) {
  TraceEvent event;
  event.name = name;
  event.category = "test";
  event.tid = CurrentThreadId();
  event.start_us = start_us;
  event.duration_us = 1;
  return event;
}

TEST_F(ObsTest, RingBufferKeepsNewestAndCountsDropped) {
  auto& recorder = TraceRecorder::Default();
  recorder.Enable(4);
  static const char* const kNames[] = {"s0", "s1", "s2", "s3", "s4", "s5", "s6"};
  for (int i = 0; i < 7; ++i) {
    recorder.Record(MakeEvent(kNames[i], i));
  }
  EXPECT_EQ(recorder.dropped(), 3u);  // s0..s2 overwritten
  const std::vector<TraceEvent> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first: the survivors are s3..s6 in recording order.
  for (int i = 0; i < 4; ++i) {
    EXPECT_STREQ(spans[static_cast<size_t>(i)].name, kNames[i + 3]);
    EXPECT_EQ(spans[static_cast<size_t>(i)].start_us, i + 3);
  }
}

TEST_F(ObsTest, EnableResetsRingAndClock) {
  auto& recorder = TraceRecorder::Default();
  recorder.Enable(2);
  recorder.Record(MakeEvent("old", 0));
  recorder.Enable(2);  // re-enable: previous contents are gone
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_GE(recorder.NowUs(), 0);
}

TEST_F(ObsTest, ScopedSpanIsNoOpWhenDisabled) {
  auto& recorder = TraceRecorder::Default();
  recorder.Disable();
  { ScopedSpan span("obs_test.disabled_span", "test"); }
  recorder.Enable(8);
  EXPECT_TRUE(recorder.Snapshot().empty());
  { ScopedSpan span("obs_test.enabled_span", "test"); }
  const auto spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "obs_test.enabled_span");
  EXPECT_GE(spans[0].duration_us, 0);
}

TEST_F(ObsTest, ChromeTraceExportIsWellFormed) {
  auto& recorder = TraceRecorder::Default();
  recorder.Enable(16);
  SetCurrentThreadName("obs-test-main");
  { ScopedSpan span("obs_test.export_span", "test"); }
  const std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(recorder.WriteChromeTrace(path).ok());

  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string body;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    body.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());

  EXPECT_EQ(body.front(), '{');
  EXPECT_EQ(body.find_last_not_of(" \n"), body.rfind('}'));
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);          // duration event
  EXPECT_NE(body.find("\"ph\":\"M\""), std::string::npos);          // thread_name metadata
  EXPECT_NE(body.find("obs-test-main"), std::string::npos);         // registered name
  EXPECT_NE(body.find("obs_test.export_span"), std::string::npos);  // the span itself
  EXPECT_NE(body.find("\"dropped_spans\":0"), std::string::npos);
}

TEST_F(ObsTest, ThreadIdsAreSmallAndStable) {
  const uint32_t id = CurrentThreadId();
  EXPECT_GE(id, 1u);
  EXPECT_EQ(CurrentThreadId(), id);  // stable within the thread
}

}  // namespace
}  // namespace medea::obs
