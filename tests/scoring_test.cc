// Tests for the scheduler scoring layer: SubjectIndex bookkeeping, the
// equivalence of indexed and scan-based LocalViolationExtent (a property
// checked over randomized states), and the subject-only scoring mode.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/schedulers/scoring.h"

namespace medea {
namespace {

class ScoringTest : public ::testing::Test {
 protected:
  ScoringTest()
      : state_(ClusterBuilder()
                   .NumNodes(16)
                   .NumRacks(4)
                   .NumUpgradeDomains(4)
                   .NumServiceUnits(4)
                   .NodeCapacity(Resource(16 * 1024, 8))
                   .Build()),
        manager_(state_.groups_ptr()) {}

  ContainerId Place(NodeId node, const std::vector<std::string>& tags,
                    ApplicationId app = ApplicationId(1)) {
    auto c = state_.Allocate(app, node, Resource(1024, 1), manager_.tags().InternAll(tags),
                             true);
    EXPECT_TRUE(c.ok());
    return *c;
  }

  std::vector<std::pair<ConstraintId, const PlacementConstraint*>> Relevant() {
    return manager_.Effective();
  }

  ClusterState state_;
  ConstraintManager manager_;
};

TEST_F(ScoringTest, SubjectIndexCollectsExistingSubjects) {
  ASSERT_TRUE(manager_
                  .AddFromText("{hb, {hb, 0, 0}, node}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  Place(NodeId(0), {"hb"});
  Place(NodeId(1), {"hb"});
  Place(NodeId(2), {"other"});
  SubjectIndex index(state_, Relevant());
  ASSERT_EQ(index.num_constraints(), 1u);
  EXPECT_EQ(index.subjects(0).size(), 2u);
}

TEST_F(ScoringTest, SubjectIndexAddRemove) {
  ASSERT_TRUE(manager_
                  .AddFromText("{hb, {hb, 0, 0}, node}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  SubjectIndex index(state_, Relevant());
  EXPECT_TRUE(index.subjects(0).empty());
  const ContainerId c = Place(NodeId(0), {"hb"});
  index.Add(state_, c);
  EXPECT_EQ(index.subjects(0).size(), 1u);
  index.Remove(c);
  EXPECT_TRUE(index.subjects(0).empty());
}

TEST_F(ScoringTest, IndexedExtentMatchesScanExtent) {
  // Property: the indexed and scan-based local violation extents agree on
  // randomized placements and constraint mixes.
  ASSERT_TRUE(manager_
                  .AddFromText("{a, {a, 0, 0}, node}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  ASSERT_TRUE(manager_
                  .AddFromText("{b, {a, 1, inf}, rack}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  ASSERT_TRUE(manager_
                  .AddFromText("{a, {b, 0, 2}, rack}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  Rng rng(99);
  for (int i = 0; i < 40; ++i) {
    const char* tag = rng.NextBool(0.5) ? "a" : "b";
    Place(NodeId(static_cast<uint32_t>(rng.NextBounded(16))), {tag});
  }
  const auto relevant = Relevant();
  SubjectIndex index(state_, relevant);
  for (uint32_t n = 0; n < 16; ++n) {
    const double scanned = LocalViolationExtent(state_, relevant, NodeId(n));
    const double indexed = LocalViolationExtent(state_, index, NodeId(n));
    EXPECT_NEAR(scanned, indexed, 1e-9) << "node " << n;
  }
}

TEST_F(ScoringTest, IndexedDeltaMatchesScanDelta) {
  ASSERT_TRUE(manager_
                  .AddFromText("{a, {a, 0, 1}, node}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  ASSERT_TRUE(manager_
                  .AddFromText("{a, {b, 1, inf}, rack}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    Place(NodeId(static_cast<uint32_t>(rng.NextBounded(16))),
          {rng.NextBool(0.5) ? "a" : "b"});
  }
  const auto relevant = Relevant();
  SubjectIndex index(state_, relevant);
  ContainerRequest req{Resource(1024, 1), manager_.tags().InternAll({"a"})};
  ClusterState scratch = state_;
  for (uint32_t n = 0; n < 16; ++n) {
    const double scanned =
        PlacementScoreDelta(scratch, relevant, ApplicationId(2), req, NodeId(n));
    const double indexed =
        PlacementScoreDelta(scratch, index, ApplicationId(2), req, NodeId(n));
    EXPECT_NEAR(scanned, indexed, 1e-9) << "node " << n;
  }
}

TEST_F(ScoringTest, SubjectOnlyIgnoresDamageToOthers) {
  // "old" containers demand no "noisy" neighbours. A noisy container scored
  // subject-only sees nothing wrong with joining them; the impact-aware
  // delta does.
  ASSERT_TRUE(manager_
                  .AddFromText("{old, {noisy, 0, 0}, node}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  Place(NodeId(3), {"old"});
  const auto relevant = Relevant();
  ContainerRequest req{Resource(1024, 1), manager_.tags().InternAll({"noisy"})};
  ClusterState scratch = state_;
  const double subject_only =
      SubjectOnlyScore(scratch, relevant, ApplicationId(2), req, NodeId(3));
  EXPECT_DOUBLE_EQ(subject_only, 0.0);  // blind to the harm
  const double impact =
      PlacementScoreDelta(scratch, relevant, ApplicationId(2), req, NodeId(3));
  EXPECT_GT(impact, 0.0);  // prices the harm
}

TEST_F(ScoringTest, DeltaRestoresScratchState) {
  ASSERT_TRUE(manager_
                  .AddFromText("{a, {a, 0, 0}, node}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  Place(NodeId(0), {"a"});
  ClusterState scratch = state_;
  const size_t before = scratch.num_containers();
  ContainerRequest req{Resource(1024, 1), manager_.tags().InternAll({"a"})};
  const auto relevant = Relevant();
  SubjectIndex index(scratch, relevant);
  PlacementScoreDelta(scratch, index, ApplicationId(2), req, NodeId(0));
  EXPECT_EQ(scratch.num_containers(), before);
  EXPECT_EQ(scratch.node(NodeId(0)).used(), Resource(1024, 1));
}

}  // namespace
}  // namespace medea
