// Copyright (c) Medea reproduction authors.
// ThreadSanitizer stress test for the parallel branch-and-bound solver (the
// suite name matches the tsan preset's "ThreadTest" ctest filter, so this
// runs under TSan in CI). Two pressure axes:
//   1. Internal: a single SolveMip call fanning out to many workers over the
//      shared frontier / incumbent / budget, with the obs layer enabled so
//      the per-worker spans and counters race against real tracing.
//   2. External: multiple threads each running their own parallel solve
//      concurrently (the production shape once several scheduler instances
//      share a process), and a parallel-solver ILP scheduler living inside
//      the TwoSchedulerRuntime next to the scheduler + heartbeat threads.
// medea-lint: allow-file(raw-sync): deliberate raw std::thread use — external pressure
// threads here must not inherit the sync wrappers' annotations or extra ordering.

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/sync/work_queue.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/two_scheduler_runtime.h"
#include "src/schedulers/ilp_scheduler.h"
#include "src/solver/mip.h"
#include "src/solver/testing/placement_model.h"
#include "src/workload/lra_templates.h"

namespace medea {
namespace {

solver::MipOptions ParallelExact(int threads) {
  solver::MipOptions options;
  options.time_limit_seconds = 0.0;
  options.relative_gap = 0.0;
  options.absolute_gap = 1e-9;
  options.certify = true;
  options.num_threads = threads;
  return options;
}

TEST(ParallelSolverThreadTest, ManyWorkersOneSearchUnderInstrumentation) {
  obs::EnableMetrics(true);
  obs::MetricsRegistry::Default().Reset();
  obs::TraceRecorder::Default().Enable(1 << 12);

  const solver::Model m = solver::testing::PlacementModel(12, 6, 7);
  solver::MipStats serial_stats;
  const solver::Solution serial = solver::SolveMip(m, ParallelExact(1), &serial_stats);
  ASSERT_EQ(serial.status, solver::SolveStatus::kOptimal);

  // 8 workers on however few cores the machine has: maximum preemption, so
  // TSan sees every interleaving class the frontier can produce.
  solver::MipStats stats;
  const solver::Solution parallel = solver::SolveMip(m, ParallelExact(8), &stats);
  ASSERT_EQ(parallel.status, solver::SolveStatus::kOptimal);
  EXPECT_NEAR(parallel.objective, serial.objective, 1e-6);
  EXPECT_EQ(stats.threads_used, 8);
  EXPECT_EQ(static_cast<int>(stats.per_worker.size()), 8);

  obs::EnableMetrics(false);
  obs::TraceRecorder::Default().Disable();
}

TEST(ParallelSolverThreadTest, DecomposedComponentsSolveInParallelUnderInstrumentation) {
  // The decomposed path replaces tree-level parallelism with component-level
  // parallelism: a pool of workers pulls components off one atomic counter,
  // each running its own serial sub-search with a private LP engine, while
  // the obs layer records per-component spans. TSan sees the pool spawn,
  // the counter traffic, the per-slot result writes and the join.
  obs::EnableMetrics(true);
  obs::MetricsRegistry::Default().Reset();
  obs::TraceRecorder::Default().Enable(1 << 12);

  const solver::Model m = solver::testing::DecomposablePlacementModel(20, 10, 5, 3);
  solver::MipStats serial_stats;
  const solver::Solution serial = solver::SolveMip(m, ParallelExact(1), &serial_stats);
  ASSERT_EQ(serial.status, solver::SolveStatus::kOptimal);

  solver::MipOptions options = ParallelExact(8);
  options.decompose = true;
  options.relax_round_min_integers = 1;  // exercise the fast lane concurrently
  solver::MipStats stats;
  const solver::Solution dec = solver::SolveMip(m, options, &stats);
  ASSERT_EQ(dec.status, solver::SolveStatus::kOptimal);
  EXPECT_NEAR(dec.objective, serial.objective, 1e-6);
  EXPECT_EQ(stats.components, 5);
  // One worker per component, capped by the component count.
  EXPECT_EQ(stats.threads_used, 5);
  EXPECT_EQ(stats.relax_round_accepted + stats.relax_round_rejected, 5);

  obs::EnableMetrics(false);
  obs::TraceRecorder::Default().Disable();
}

TEST(ParallelSolverThreadTest, DualSimplexRebaseSeedBatchUnderInstrumentation) {
  // Seed batch for the dual-simplex warm-restart path under steal-rebase
  // pressure: every worker re-bases its private incremental engine after a
  // steal (MoveToNode bound rewinds) and repairs with dual pivots; root cuts
  // and strong-branch pseudo-cost tables are built once on the main thread
  // and copied into every worker. TSan watches the copies, the rebase
  // traffic and the shared incumbent against the serial reference.
  obs::EnableMetrics(true);
  obs::MetricsRegistry::Default().Reset();
  for (const uint64_t seed : {3ULL, 7ULL, 11ULL, 13ULL}) {
    const solver::Model m = solver::testing::PlacementModel(12, 6, seed);
    solver::MipOptions serial_opts = ParallelExact(1);
    serial_opts.cuts.enable = true;  // defaults, pinned for the comparison
    serial_opts.branching = solver::BranchingRule::kPseudoCost;
    solver::MipStats serial_stats;
    const solver::Solution serial = solver::SolveMip(m, serial_opts, &serial_stats);
    ASSERT_EQ(serial.status, solver::SolveStatus::kOptimal) << "seed " << seed;

    solver::MipOptions par_opts = ParallelExact(6);
    par_opts.cuts.enable = true;
    par_opts.branching = solver::BranchingRule::kPseudoCost;
    par_opts.node_reduced_cost_fixing = true;  // node-level fixes ride the chains
    solver::MipStats stats;
    const solver::Solution parallel = solver::SolveMip(m, par_opts, &stats);
    ASSERT_EQ(parallel.status, solver::SolveStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(parallel.objective, serial.objective, 1e-6) << "seed " << seed;
    // The cut set is built pre-fork and must be identical to the serial one.
    EXPECT_EQ(stats.cuts_active, serial_stats.cuts_active) << "seed " << seed;
    EXPECT_EQ(stats.cuts_generated, serial_stats.cuts_generated) << "seed " << seed;
  }
  obs::EnableMetrics(false);
}

TEST(ParallelSolverThreadTest, ConcurrentParallelSolvesDoNotInterfere) {
  // Each caller thread runs its own multi-worker search; the engines share
  // nothing but the process-wide obs registry. Every search must still
  // certify the serial objective for its own model.
  obs::EnableMetrics(true);
  constexpr int kCallers = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([c, &mismatches] {
      const uint64_t seed = 3 + 2 * static_cast<uint64_t>(c);
      const solver::Model m = solver::testing::PlacementModel(10, 5, seed);
      const solver::Solution serial = solver::SolveMip(m, ParallelExact(1));
      const solver::Solution parallel = solver::SolveMip(m, ParallelExact(2));
      if (serial.status != solver::SolveStatus::kOptimal ||
          parallel.status != solver::SolveStatus::kOptimal ||
          std::fabs(serial.objective - parallel.objective) > 1e-6) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : callers) {
    t.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
  obs::EnableMetrics(false);
}

TEST(ParallelSolverThreadTest, SolverWorkersCoexistWithRuntimeThreads) {
  // The ILP scheduler spins up solver workers INSIDE the runtime's LRA
  // scheduler thread while the heartbeat thread churns — the exact thread
  // topology of a production deployment (--runtime --solver-threads N).
  runtime::RuntimeConfig config;
  config.num_nodes = 24;
  config.num_racks = 4;
  config.num_upgrade_domains = 4;
  config.num_service_units = 4;
  config.heartbeat_period = std::chrono::milliseconds(2);

  SchedulerConfig sched_config;
  sched_config.node_pool_size = 24;
  sched_config.ilp_time_limit_seconds = 0.5;
  sched_config.solver_threads = 2;
  sched_config.seed = 11;

  runtime::TwoSchedulerRuntime runtime(config,
                                       std::make_unique<MedeaIlpScheduler>(sched_config));
  runtime.Start();
  for (int i = 0; i < 4; ++i) {
    const ApplicationId app(static_cast<uint32_t>(1 + i));
    runtime.SubmitLra(runtime.BuildSpec([&](TagPool& tags) {
      return MakeGenericLra(app, tags, 3, "par");
    }));
  }
  ASSERT_TRUE(runtime.WaitLraIdle(std::chrono::minutes(3)));
  runtime.Stop();
  const runtime::RuntimeMetrics metrics = runtime.metrics();
  EXPECT_EQ(metrics.lras_placed + metrics.lras_rejected, 4);
}

TEST(ParallelSolverThreadTest, WorkStealingDequeSurvivesOwnerThiefRaces) {
  // Focused hammer on the one new sync primitive: one owner pushing/popping
  // at the top, several thieves stealing from the bottom; every pushed item
  // must be consumed exactly once.
  sync::WorkStealingDeque<int> deque;
  constexpr int kItems = 2000;
  constexpr int kThieves = 3;
  std::atomic<long long> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      int item = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (deque.TrySteal(&item)) {
          consumed_sum.fetch_add(item, std::memory_order_relaxed);
          consumed_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  long long pushed_sum = 0;
  std::thread owner([&] {
    int item = 0;
    for (int i = 1; i <= kItems; ++i) {
      deque.PushTop(i);
      if (i % 3 == 0 && deque.PopTop(&item)) {
        consumed_sum.fetch_add(item, std::memory_order_relaxed);
        consumed_count.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Drain whatever the thieves left behind.
    while (deque.PopTop(&item)) {
      consumed_sum.fetch_add(item, std::memory_order_relaxed);
      consumed_count.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int i = 1; i <= kItems; ++i) {
    pushed_sum += i;
  }
  owner.join();
  // Let the thieves take one more pass at an (empty) deque, then stop them.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) {
    t.join();
  }
  int leftover = 0;
  while (deque.TrySteal(&leftover)) {
    consumed_sum.fetch_add(leftover, std::memory_order_relaxed);
    consumed_count.fetch_add(1, std::memory_order_relaxed);
  }
  EXPECT_EQ(consumed_count.load(), kItems);
  EXPECT_EQ(consumed_sum.load(), pushed_sum);
  EXPECT_EQ(deque.Size(), 0u);
}

}  // namespace
}  // namespace medea
