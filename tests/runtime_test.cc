// Copyright (c) Medea reproduction authors.
// Functional tests for the TwoSchedulerRuntime (src/runtime): the two-thread
// pipeline places LRAs correctly, constraints are registered and enforced,
// task jobs run to completion, node failures trigger failover resubmission,
// and stale plans are revalidated rather than blindly committed. The heavy
// concurrency torture lives in runtime_stress_test.cc; these tests assert
// functional behavior with deterministic workloads.

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "src/runtime/two_scheduler_runtime.h"
#include "src/schedulers/greedy.h"
#include "src/sim/runtime_driver.h"
#include "src/verify/invariant_checker.h"
#include "src/workload/lra_templates.h"

namespace medea::runtime {
namespace {

std::unique_ptr<LraScheduler> MakeScheduler() {
  SchedulerConfig config;
  config.node_pool_size = 24;
  config.seed = 11;
  return std::make_unique<GreedyScheduler>(GreedyOrdering::kNodeCandidates, config);
}

RuntimeConfig SmallConfig() {
  RuntimeConfig config;
  config.num_nodes = 24;
  config.num_racks = 4;
  config.num_upgrade_domains = 4;
  config.num_service_units = 4;
  config.heartbeat_period = std::chrono::milliseconds(1);
  return config;
}

TEST(TwoSchedulerRuntimeTest, PlacesSubmittedLras) {
  TwoSchedulerRuntime runtime(SmallConfig(), MakeScheduler());
  runtime.Start();
  for (uint32_t i = 1; i <= 3; ++i) {
    const ApplicationId app(i);
    runtime.SubmitLra(runtime.BuildSpec(
        [&](TagPool& tags) { return MakeHBaseInstance(app, tags, /*num_workers=*/4); }));
  }
  ASSERT_TRUE(runtime.WaitLraIdle(std::chrono::seconds(10)));
  runtime.Stop();

  const RuntimeMetrics metrics = runtime.metrics();
  EXPECT_EQ(metrics.lras_placed, 3);
  EXPECT_EQ(metrics.lras_rejected, 0);
  runtime.WithStateLocked([](const ClusterState& state, const ConstraintManager& manager) {
    // 4 workers + master + thrift + secondary master per HBase instance.
    EXPECT_EQ(state.num_long_running_containers(), 3u * 7u);
    EXPECT_GT(manager.size(), 0u);
    const auto report = verify::InvariantChecker::CheckState(state, &manager);
    EXPECT_TRUE(report.ok()) << report.ToString();
  });
}

TEST(TwoSchedulerRuntimeTest, TaskJobsRunToCompletion) {
  TwoSchedulerRuntime runtime(SmallConfig(), MakeScheduler());
  runtime.Start();
  std::vector<TaskRequest> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.emplace_back(Resource(1024, 1), /*duration_ms=*/5);
  }
  runtime.SubmitTaskJob(std::move(tasks));
  // Tasks take ~5 ms each and the cluster fits all eight at once.
  for (int spins = 0; spins < 500 && runtime.metrics().tasks_completed < 8; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  runtime.Stop();
  EXPECT_EQ(runtime.metrics().tasks_completed, 8);
  EXPECT_EQ(runtime.running_tasks(), 0u);
}

TEST(TwoSchedulerRuntimeTest, NodeDownTriggersFailoverReplacement) {
  TwoSchedulerRuntime runtime(SmallConfig(), MakeScheduler());
  runtime.Start();
  const ApplicationId app(42);
  runtime.SubmitLra(runtime.BuildSpec(
      [&](TagPool& tags) { return MakeGenericLra(app, tags, 4, "failover-svc"); }));
  ASSERT_TRUE(runtime.WaitLraIdle(std::chrono::seconds(10)));

  // Find a node hosting one of the app's containers and fail it.
  NodeId victim = NodeId::Invalid();
  runtime.WithStateLocked([&](const ClusterState& state, const ConstraintManager&) {
    for (ContainerId c : state.ContainersOf(app)) {
      victim = state.FindContainer(c)->node;
      break;
    }
  });
  ASSERT_TRUE(victim.IsValid());
  runtime.NodeDown(victim);
  ASSERT_TRUE(runtime.WaitLraIdle(std::chrono::seconds(10)));
  runtime.Stop();

  const RuntimeMetrics metrics = runtime.metrics();
  EXPECT_GT(metrics.lra_containers_lost, 0);
  EXPECT_GT(metrics.failover_replacements, 0);
  runtime.WithStateLocked([&](const ClusterState& state, const ConstraintManager& manager) {
    // The app is back to full strength on the surviving nodes.
    EXPECT_EQ(state.ContainersOf(app).size(), 4u);
    for (ContainerId c : state.ContainersOf(app)) {
      EXPECT_NE(state.FindContainer(c)->node.value, victim.value);
    }
    const auto report = verify::InvariantChecker::CheckState(state, &manager);
    EXPECT_TRUE(report.ok()) << report.ToString();
  });
}

TEST(TwoSchedulerRuntimeTest, OperatorConstraintDeduplicatesAndValidates) {
  TwoSchedulerRuntime runtime(SmallConfig(), MakeScheduler());
  const std::string text = "{hbase-worker, {hbase-worker, 0, 1}, node}";
  ASSERT_TRUE(runtime.AddOperatorConstraint(text).ok());
  ASSERT_TRUE(runtime.AddOperatorConstraint(text).ok());  // deduplicated
  EXPECT_FALSE(runtime.AddOperatorConstraint("not a constraint").ok());
  runtime.WithStateLocked([](const ClusterState&, const ConstraintManager& manager) {
    EXPECT_EQ(manager.size(), 1u);
  });
}

TEST(RuntimeDriverTest, ReplaysTimedWorkload) {
  RuntimeDriver driver(SmallConfig(), MakeScheduler());
  for (uint32_t i = 1; i <= 2; ++i) {
    const ApplicationId app(i);
    driver.At(static_cast<SimTimeMs>(i) * 10, [app](TwoSchedulerRuntime& rt) {
      rt.SubmitLra(
          rt.BuildSpec([&](TagPool& tags) { return MakeGenericLra(app, tags, 2, "driver"); }));
    });
  }
  driver.At(5, [](TwoSchedulerRuntime& rt) {
    rt.SubmitTaskJob({TaskRequest(Resource(512, 1), 5), TaskRequest(Resource(512, 1), 5)});
  });
  const RuntimeMetrics metrics = driver.Run(/*horizon_ms=*/60);
  EXPECT_EQ(metrics.lras_placed, 2);
  EXPECT_EQ(metrics.tasks_completed, 2);
}

}  // namespace
}  // namespace medea::runtime
