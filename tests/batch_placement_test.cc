// Copyright (c) Medea reproduction authors.
// Batching-equivalence tests for multi-app placement (the paper's "place
// multiple LRAs at once" claim, §3.2/§4):
//
//  * Solving a batch of K apps as ONE multi-app ILP yields an Eq.1 objective
//    at least as good as the best sequential ordering of K single-app
//    solves — the joint model sees every interaction the sequential loop
//    discovers one commit at a time.
//  * When the K apps share no feasible nodes (and no tags), the solver's
//    component decomposition recovers exactly K independent sub-models from
//    the joint ILP.

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/cluster_state.h"
#include "src/core/constraint_manager.h"
#include "src/schedulers/ilp_scheduler.h"
#include "src/verify/invariant_checker.h"
#include "src/workload/lra_templates.h"

namespace medea {
namespace {

// Full-visibility config: every node in the pool, every node a candidate,
// no variable budget pressure, generous time limit on these tiny instances.
// Required for the dominance argument — any sequentially feasible
// assignment must be representable in the joint model.
SchedulerConfig FullVisibilityConfig(size_t num_nodes) {
  SchedulerConfig config;
  config.node_pool_size = static_cast<int>(num_nodes);
  config.candidates_per_container = static_cast<int>(num_nodes);
  config.x_var_budget = 1 << 20;
  config.ilp_time_limit_seconds = 30.0;
  config.seed = 42;
  return config;
}

LraRequest SimpleLra(ApplicationId app, TagPool& tags, int containers, const Resource& demand,
                     const std::string& tag) {
  LraSpec spec = MakeGenericLra(app, tags, containers, tag, demand);
  return std::move(spec.request);
}

// Remaps a single-app plan (lra_index 0) into `combined` at `batch_index`.
void MergeIntoCombined(const PlacementPlan& single, size_t batch_index,
                       PlacementPlan& combined) {
  combined.lra_placed[batch_index] = !single.lra_placed.empty() && single.lra_placed[0];
  for (const Assignment& a : single.assignments) {
    combined.assignments.push_back(
        Assignment{static_cast<int>(batch_index), a.container_index, a.node});
  }
}

TEST(BatchPlacementTest, MultiAppIlpDominatesEverySequentialOrdering) {
  // 4 nodes x (16 GB, 8 cores); 3 apps x 3 containers of (8 GB, 1 core):
  // 9 containers chase 8 memory slots, so orderings genuinely compete.
  ClusterState initial =
      ClusterBuilder().NumNodes(4).NumRacks(2).NumUpgradeDomains(2).NumServiceUnits(2).Build();
  ConstraintManager manager(initial.groups_ptr());
  const SchedulerConfig config = FullVisibilityConfig(initial.num_nodes());

  constexpr size_t kApps = 3;
  std::vector<LraRequest> lras;
  for (size_t k = 0; k < kApps; ++k) {
    lras.push_back(SimpleLra(ApplicationId(static_cast<uint32_t>(k + 1)), manager.tags(), 3,
                             Resource(8 * 1024, 1), "batch"));
  }

  PlacementProblem batch_problem;
  batch_problem.lras = lras;
  batch_problem.state = &initial;
  batch_problem.manager = &manager;

  // Joint solve: one multi-app ILP over all K apps.
  MedeaIlpScheduler ilp(config);
  const PlacementPlan batch_plan = ilp.Place(batch_problem);
  ASSERT_EQ(ilp.last_stats().status, solver::SolveStatus::kOptimal)
      << solver::SolveStatusName(ilp.last_stats().status);
  const auto batch_report = verify::InvariantChecker::CheckPlan(batch_problem, batch_plan);
  ASSERT_TRUE(batch_report.ok()) << batch_report.ToString();
  const double batch_objective =
      verify::InvariantChecker::PlanObjective(batch_problem, batch_plan);

  // Sequential baselines: every ordering of K single-app solves, each
  // committed before the next solve (the pre-batching service behavior).
  // Each ordering's assignments are remapped into one combined plan and
  // scored with the same Eq.1 currency against the same initial state.
  std::vector<size_t> order(kApps);
  std::iota(order.begin(), order.end(), 0);
  double best_sequential = -1e9;
  int orderings = 0;
  do {
    ClusterState scratch = initial;
    PlacementPlan combined;
    combined.lra_placed.assign(kApps, false);
    bool solver_ok = true;
    for (size_t index : order) {
      PlacementProblem single;
      single.lras = {lras[index]};
      single.state = &scratch;
      single.manager = &manager;
      MedeaIlpScheduler sequential(config);
      const PlacementPlan plan = sequential.Place(single);
      if (sequential.last_stats().status != solver::SolveStatus::kOptimal &&
          sequential.last_stats().status != solver::SolveStatus::kInfeasible) {
        solver_ok = false;
        break;
      }
      MergeIntoCombined(plan, index, combined);
      CommitPlan(single, plan, scratch);
    }
    ASSERT_TRUE(solver_ok);
    const double objective =
        verify::InvariantChecker::PlanObjective(batch_problem, combined);
    best_sequential = std::max(best_sequential, objective);
    ++orderings;
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_EQ(orderings, 6);  // 3! orderings covered

  // The joint optimum dominates the best sequential ordering (it could
  // always reproduce that ordering's assignment).
  EXPECT_GE(batch_objective, best_sequential - 1e-6)
      << "batch=" << batch_objective << " best_sequential=" << best_sequential;
}

TEST(BatchPlacementTest, DecompositionRecoversKComponentsForDisjointApps) {
  // K capacity classes with anti-ordered dimensions: memory strictly
  // increases with the class, cores strictly decrease. App k's demand is
  // exactly a class-k node's capacity, so CanFit admits only class k —
  // the K apps share no feasible nodes and no tags.
  constexpr size_t kApps = 4;
  constexpr size_t kNodesPerClass = 2;
  constexpr size_t kNodes = kApps * kNodesPerClass;

  const auto class_capacity = [](size_t k) {
    return Resource(static_cast<int64_t>(4096 * (k + 1)), static_cast<int32_t>(16 - 2 * k));
  };

  std::vector<Node> nodes;
  std::vector<int> rack(kNodes);
  for (size_t i = 0; i < kNodes; ++i) {
    const size_t k = i / kNodesPerClass;
    nodes.emplace_back(NodeId(static_cast<uint32_t>(i)), "hetero-" + std::to_string(i),
                       class_capacity(k));
    rack[i] = static_cast<int>(k);
  }
  auto groups = std::make_shared<NodeGroupRegistry>(kNodes);
  ASSERT_TRUE(groups->RegisterPartition(kNodeGroupRack, rack).ok());
  ASSERT_TRUE(groups->RegisterPartition(kNodeGroupUpgradeDomain, rack).ok());
  ASSERT_TRUE(groups->RegisterPartition(kNodeGroupServiceUnit, rack).ok());
  ClusterState state(std::move(nodes), std::move(groups));
  ConstraintManager manager(state.groups_ptr());

  PlacementProblem problem;
  for (size_t k = 0; k < kApps; ++k) {
    problem.lras.push_back(SimpleLra(ApplicationId(static_cast<uint32_t>(k + 1)),
                                     manager.tags(), static_cast<int>(kNodesPerClass),
                                     class_capacity(k), "class" + std::to_string(k)));
  }
  problem.state = &state;
  problem.manager = &manager;

  SchedulerConfig config = FullVisibilityConfig(kNodes);
  config.solver_decompose = true;

  MedeaIlpScheduler ilp(config);
  const PlacementPlan plan = ilp.Place(problem);

  // Everything fits (each app exactly fills its class), and the joint model
  // separates back into exactly K independent components.
  EXPECT_EQ(plan.NumPlaced(), static_cast<int>(kApps));
  EXPECT_EQ(ilp.last_stats().mip.components, static_cast<int>(kApps));

  // Every container landed on a node of its app's class.
  for (const Assignment& a : plan.assignments) {
    const size_t expected_class = static_cast<size_t>(a.lra_index);
    EXPECT_EQ(a.node.value / kNodesPerClass, expected_class)
        << "app " << a.lra_index << " placed on node " << a.node.value;
  }

  const auto report = verify::InvariantChecker::CheckPlan(problem, plan);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace medea
