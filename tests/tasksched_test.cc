// Tests for the task-based (capacity) scheduler: FIFO queues, capacity
// caps, heartbeat allocation, task completion, allocation-latency tracking,
// and the LRA commit path of the two-scheduler design.

#include <gtest/gtest.h>

#include "src/tasksched/task_scheduler.h"

namespace medea {
namespace {

ClusterState SmallCluster() {
  return ClusterBuilder()
      .NumNodes(4)
      .NumRacks(2)
      .NumUpgradeDomains(2)
      .NumServiceUnits(2)
      .NodeCapacity(Resource(8 * 1024, 4))
      .Build();
}

std::vector<TaskRequest> Tasks(int n, Resource demand = Resource(1024, 1),
                               SimTimeMs duration = 10000) {
  return std::vector<TaskRequest>(static_cast<size_t>(n), TaskRequest{demand, duration});
}

TEST(TaskSchedulerTest, AllocatesPendingTasks) {
  ClusterState state = SmallCluster();
  TaskScheduler sched(&state);
  sched.SubmitJob(ApplicationId(1), "default", Tasks(3), 0);
  const auto allocations = sched.Tick(1000);
  EXPECT_EQ(allocations.size(), 3u);
  EXPECT_EQ(state.num_containers(), 3u);
  EXPECT_EQ(sched.pending_tasks(), 0u);
  for (const auto& a : allocations) {
    EXPECT_EQ(a.end_time, 11000);
    EXPECT_EQ(a.queued_ms, 1000);
  }
}

TEST(TaskSchedulerTest, SpreadsAcrossLeastLoadedNodes) {
  ClusterState state = SmallCluster();
  TaskScheduler sched(&state);
  sched.SubmitJob(ApplicationId(1), "default", Tasks(4), 0);
  sched.Tick(0);
  // Least-loaded placement should land one task per node.
  state.ForEachNode([&](const Node& node) {
    EXPECT_EQ(node.containers().size(), 1u);
  });
}

TEST(TaskSchedulerTest, RespectsNodeCapacity) {
  ClusterState state = SmallCluster();
  TaskScheduler sched(&state);
  // 4 nodes x 4 cores = 16 tasks of 1 core fit; the rest stay pending.
  sched.SubmitJob(ApplicationId(1), "default", Tasks(20, Resource(512, 1)), 0);
  sched.Tick(0);
  EXPECT_EQ(state.num_containers(), 16u);
  EXPECT_EQ(sched.pending_tasks(), 4u);
}

TEST(TaskSchedulerTest, CompletionFreesResources) {
  ClusterState state = SmallCluster();
  TaskScheduler sched(&state);
  sched.SubmitJob(ApplicationId(1), "default", Tasks(16, Resource(512, 1)), 0);
  auto allocations = sched.Tick(0);
  ASSERT_EQ(allocations.size(), 16u);
  sched.SubmitJob(ApplicationId(2), "default", Tasks(1, Resource(512, 1)), 0);
  EXPECT_TRUE(sched.Tick(0).empty());  // cluster cores exhausted
  sched.CompleteTask(allocations[0].container);
  EXPECT_EQ(sched.Tick(1000).size(), 1u);
}

TEST(TaskSchedulerTest, QueueCapacityCaps) {
  ClusterState state = SmallCluster();  // total 32 GB, 16 cores
  TaskScheduler sched(&state, {QueueConfig{"prod", 0.5}, QueueConfig{"batch", 0.5}});
  // prod may use at most 16 GB / 8 cores -> 8 tasks of <2GB, 1 core>.
  sched.SubmitJob(ApplicationId(1), "prod", Tasks(12, Resource(2048, 1)), 0);
  sched.Tick(0);
  EXPECT_EQ(state.num_containers(), 8u);
  EXPECT_EQ(sched.pending_tasks(), 4u);
  // batch still has its own headroom.
  sched.SubmitJob(ApplicationId(2), "batch", Tasks(4, Resource(2048, 1)), 0);
  sched.Tick(0);
  EXPECT_EQ(state.num_containers(), 12u);
}

TEST(TaskSchedulerTest, UnknownQueueFallsBack) {
  ClusterState state = SmallCluster();
  TaskScheduler sched(&state, {QueueConfig{"only", 1.0}});
  sched.SubmitJob(ApplicationId(1), "nope", Tasks(1), 0);
  EXPECT_EQ(sched.Tick(0).size(), 1u);
}

TEST(TaskSchedulerTest, FifoWithinQueue) {
  ClusterState state = SmallCluster();
  TaskScheduler sched(&state);
  // First job too big to fit blocks the head of the queue (head-of-line,
  // like the Capacity Scheduler's FIFO leaf policy).
  sched.SubmitJob(ApplicationId(1), "default", Tasks(1, Resource(9 * 1024, 1)), 0);
  sched.SubmitJob(ApplicationId(2), "default", Tasks(1, Resource(1024, 1)), 0);
  EXPECT_TRUE(sched.Tick(0).empty());
  EXPECT_EQ(sched.pending_tasks(), 2u);
}

TEST(TaskSchedulerTest, TracksAllocationLatency) {
  ClusterState state = SmallCluster();
  TaskScheduler sched(&state);
  sched.SubmitJob(ApplicationId(1), "default", Tasks(2), 100);
  sched.Tick(600);
  ASSERT_EQ(sched.allocation_latency_ms().Count(), 2u);
  EXPECT_DOUBLE_EQ(sched.allocation_latency_ms().Mean(), 500.0);
}

TEST(TaskSchedulerTest, FairPolicySharesBetweenApps) {
  ClusterState state = SmallCluster();
  QueueConfig queue;
  queue.name = "fair";
  queue.policy = QueuePolicy::kFair;
  TaskScheduler sched(&state, {queue});
  // App 1 floods the queue first; app 2 submits later. Under FIFO app 2
  // would starve behind app 1's backlog; fair sharing alternates.
  sched.SubmitJob(ApplicationId(1), "fair", Tasks(12, Resource(2048, 1)), 0);
  sched.SubmitJob(ApplicationId(2), "fair", Tasks(12, Resource(2048, 1)), 0);
  // Capacity: 4 nodes x 4 cores = 16 slots; both backlogs exceed it.
  const auto allocations = sched.Tick(0);
  ASSERT_EQ(allocations.size(), 16u);
  int app2 = 0;
  for (const auto& a : allocations) {
    app2 += a.app == ApplicationId(2) ? 1 : 0;
  }
  EXPECT_EQ(app2, 8);  // an even split
}

TEST(TaskSchedulerTest, FifoPolicyServesInOrder) {
  ClusterState state = SmallCluster();
  TaskScheduler sched(&state);  // default FIFO
  sched.SubmitJob(ApplicationId(1), "default", Tasks(12, Resource(2048, 1)), 0);
  sched.SubmitJob(ApplicationId(2), "default", Tasks(12, Resource(2048, 1)), 0);
  const auto allocations = sched.Tick(0);
  ASSERT_EQ(allocations.size(), 16u);
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(allocations[i].app, ApplicationId(1));
  }
}

TEST(TaskSchedulerTest, TaggedTaskFollowsItsConstraint) {
  // §5.4: a task-based job with a constraint toward an LRA is steered
  // heuristically.
  ClusterState state = SmallCluster();
  ConstraintManager manager(state.groups_ptr());
  const TagId mem = manager.tags().Intern("mem");
  const TagId etl = manager.tags().Intern("etl");
  ASSERT_TRUE(state.Allocate(ApplicationId(9), NodeId(2), Resource(1024, 1), {mem}, true).ok());
  ASSERT_TRUE(manager
                  .AddFromText("{etl, {mem, 1, inf}, node}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  TaskScheduler sched(&state, {}, &manager);
  TaskRequest task{Resource(1024, 1), 1000, {etl}};
  sched.SubmitJob(ApplicationId(1), "default", {task}, 0);
  const auto allocations = sched.Tick(0);
  ASSERT_EQ(allocations.size(), 1u);
  EXPECT_EQ(allocations[0].node, NodeId(2));  // next to the memcached LRA
}

TEST(TaskSchedulerTest, TaggedTaskWithoutManagerFallsBack) {
  ClusterState state = SmallCluster();
  TaskScheduler sched(&state);  // no manager: tags carried but not steered
  TaskRequest task{Resource(1024, 1), 1000, {TagId(3)}};
  sched.SubmitJob(ApplicationId(1), "default", {task}, 0);
  const auto allocations = sched.Tick(0);
  ASSERT_EQ(allocations.size(), 1u);
  // The tags still land on the container (they count toward gamma).
  const ContainerInfo* info = state.FindContainer(allocations[0].container);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->tags.size(), 1u);
}

TEST(TaskSchedulerTest, CommitLraPlanAllocatesLongRunning) {
  ClusterState state = SmallCluster();
  TaskScheduler sched(&state);
  LraRequest lra;
  lra.app = ApplicationId(7);
  lra.containers.push_back(ContainerRequest{Resource(1024, 1), {TagId(0)}});
  PlacementProblem problem;
  problem.lras = {lra};
  problem.state = &state;
  PlacementPlan plan;
  plan.lra_placed = {true};
  plan.assignments = {{0, 0, NodeId(2)}};
  std::vector<bool> committed;
  EXPECT_TRUE(sched.CommitLraPlan(problem, plan, &committed));
  EXPECT_TRUE(committed[0]);
  EXPECT_EQ(state.num_long_running_containers(), 1u);
}

TEST(TaskSchedulerTest, CommitConflictReportsFailure) {
  ClusterState state = SmallCluster();
  TaskScheduler sched(&state);
  // Fill node 2 with tasks so the stale plan no longer fits.
  sched.SubmitJob(ApplicationId(1), "default", Tasks(4, Resource(8 * 1024, 1)), 0);
  sched.Tick(0);
  LraRequest lra;
  lra.app = ApplicationId(7);
  lra.containers.push_back(ContainerRequest{Resource(1024, 1), {}});
  PlacementProblem problem;
  problem.lras = {lra};
  problem.state = &state;
  PlacementPlan plan;
  plan.lra_placed = {true};
  plan.assignments = {{0, 0, NodeId(2)}};
  std::vector<bool> committed;
  EXPECT_FALSE(sched.CommitLraPlan(problem, plan, &committed));
  EXPECT_FALSE(committed[0]);
  EXPECT_EQ(state.num_long_running_containers(), 0u);
}

}  // namespace
}  // namespace medea
