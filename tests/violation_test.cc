// Tests for the shared constraint-violation evaluator (Eq. 8 semantics,
// self-exclusion, DNF clause choice, node-set resolution).

#include <gtest/gtest.h>

#include <memory>

#include "src/cluster/cluster_state.h"
#include "src/core/constraint_manager.h"
#include "src/core/violation.h"

namespace medea {
namespace {

class ViolationTest : public ::testing::Test {
 protected:
  ViolationTest()
      : state_(ClusterBuilder()
                   .NumNodes(8)
                   .NumRacks(2)
                   .NumUpgradeDomains(4)
                   .NumServiceUnits(2)
                   .NodeCapacity(Resource(16 * 1024, 8))
                   .Build()),
        manager_(state_.groups_ptr()) {
    hb_ = manager_.tags().Intern("hb");
    storm_ = manager_.tags().Intern("storm");
    spark_ = manager_.tags().Intern("spark");
  }

  ContainerId Place(NodeId node, std::vector<TagId> tags, ApplicationId app = ApplicationId(1)) {
    auto c = state_.Allocate(app, node, Resource(1024, 1), std::move(tags), /*long_running=*/true);
    EXPECT_TRUE(c.ok());
    return *c;
  }

  ClusterState state_;
  ConstraintManager manager_;
  TagId hb_, storm_, spark_;
};

TEST_F(ViolationTest, TagConstraintExtentFollowsEq8) {
  // Shortfall relative to cmin.
  TagConstraint tc = TagConstraint::Cardinality(TagExpression({hb_}), 4, 10);
  EXPECT_DOUBLE_EQ(ConstraintEvaluator::TagConstraintExtent(tc, 2), 0.5);
  EXPECT_DOUBLE_EQ(ConstraintEvaluator::TagConstraintExtent(tc, 4), 0.0);
  // Excess relative to cmax: 12 placed vs max 10 -> 2/10.
  EXPECT_DOUBLE_EQ(ConstraintEvaluator::TagConstraintExtent(tc, 12), 0.2);
  // Anti-affinity (cmax = 0): denominator clamps to 1, absolute excess.
  TagConstraint anti = TagConstraint::AntiAffinity(TagExpression({hb_}));
  EXPECT_DOUBLE_EQ(ConstraintEvaluator::TagConstraintExtent(anti, 3), 3.0);
  // Unbounded max never has excess.
  TagConstraint aff = TagConstraint::Affinity(TagExpression({hb_}));
  EXPECT_DOUBLE_EQ(ConstraintEvaluator::TagConstraintExtent(aff, 1000), 0.0);
  EXPECT_DOUBLE_EQ(ConstraintEvaluator::TagConstraintExtent(aff, 0), 1.0);
}

TEST_F(ViolationTest, AffinitySatisfiedOnSameNode) {
  Place(NodeId(0), {hb_});
  const ContainerId subject = Place(NodeId(0), {storm_});
  const auto c = MakeAffinity(TagExpression({storm_}), TagExpression({hb_}), kNodeGroupNode);
  const std::vector<TagId> tags = {storm_};
  const auto eval =
      ConstraintEvaluator::EvaluateConstraint(state_, c, subject, NodeId(0), tags);
  EXPECT_TRUE(eval.satisfied);
  EXPECT_DOUBLE_EQ(eval.extent, 0.0);
}

TEST_F(ViolationTest, AffinityViolatedOnDifferentNode) {
  Place(NodeId(0), {hb_});
  const ContainerId subject = Place(NodeId(1), {storm_});
  const auto c = MakeAffinity(TagExpression({storm_}), TagExpression({hb_}), kNodeGroupNode);
  const std::vector<TagId> tags = {storm_};
  const auto eval =
      ConstraintEvaluator::EvaluateConstraint(state_, c, subject, NodeId(1), tags);
  EXPECT_FALSE(eval.satisfied);
  EXPECT_DOUBLE_EQ(eval.extent, 1.0);
}

TEST_F(ViolationTest, RackAffinityUsesRackSets) {
  Place(NodeId(0), {hb_});
  const ContainerId subject = Place(NodeId(3), {storm_});  // same rack (0-3)
  const auto c = MakeAffinity(TagExpression({storm_}), TagExpression({hb_}), kNodeGroupRack);
  const std::vector<TagId> tags = {storm_};
  EXPECT_TRUE(
      ConstraintEvaluator::EvaluateConstraint(state_, c, subject, NodeId(3), tags).satisfied);
  const ContainerId far = Place(NodeId(4), {storm_});  // other rack
  EXPECT_FALSE(
      ConstraintEvaluator::EvaluateConstraint(state_, c, far, NodeId(4), tags).satisfied);
}

TEST_F(ViolationTest, SelfExclusionForSameTagConstraints) {
  // A lone spark container with "spark anti-affine to spark" must NOT
  // violate because of itself (Eqs. 6-7 exclude the subject).
  const ContainerId subject = Place(NodeId(0), {spark_});
  const auto c =
      MakeAntiAffinity(TagExpression({spark_}), TagExpression({spark_}), kNodeGroupNode);
  const std::vector<TagId> tags = {spark_};
  const auto eval =
      ConstraintEvaluator::EvaluateConstraint(state_, c, subject, NodeId(0), tags);
  EXPECT_TRUE(eval.satisfied);
  // A second spark container on the same node violates for both.
  const ContainerId second = Place(NodeId(0), {spark_});
  EXPECT_FALSE(
      ConstraintEvaluator::EvaluateConstraint(state_, c, second, NodeId(0), tags).satisfied);
  EXPECT_FALSE(
      ConstraintEvaluator::EvaluateConstraint(state_, c, subject, NodeId(0), tags).satisfied);
}

TEST_F(ViolationTest, CardinalityWindow) {
  // No fewer than 1 and no more than 2 spark per node.
  const auto c = MakeCardinality(TagExpression({spark_}), TagExpression({spark_}), 1, 2,
                                 kNodeGroupNode);
  const std::vector<TagId> tags = {spark_};
  const ContainerId c1 = Place(NodeId(0), {spark_});
  // Alone: zero *other* spark -> cmin=1 violated.
  EXPECT_FALSE(ConstraintEvaluator::EvaluateConstraint(state_, c, c1, NodeId(0), tags).satisfied);
  Place(NodeId(0), {spark_});
  EXPECT_TRUE(ConstraintEvaluator::EvaluateConstraint(state_, c, c1, NodeId(0), tags).satisfied);
  Place(NodeId(0), {spark_});
  EXPECT_TRUE(ConstraintEvaluator::EvaluateConstraint(state_, c, c1, NodeId(0), tags).satisfied);
  Place(NodeId(0), {spark_});
  // Now 3 others -> cmax=2 exceeded.
  const auto eval = ConstraintEvaluator::EvaluateConstraint(state_, c, c1, NodeId(0), tags);
  EXPECT_FALSE(eval.satisfied);
  EXPECT_DOUBLE_EQ(eval.extent, 0.5);  // excess 1 relative to cmax 2
}

TEST_F(ViolationTest, DnfTakesBestClause) {
  // Either >=3 spark per rack, or anti-affinity on node. Subject is alone on
  // its node -> second clause satisfied even though first is not.
  PlacementConstraint c;
  c.clauses.push_back({AtomicConstraint{TagExpression({spark_}),
                                        {TagConstraint::Cardinality(TagExpression({spark_}), 3,
                                                                    kCardinalityInfinity)},
                                        kNodeGroupRack}});
  c.clauses.push_back({AtomicConstraint{TagExpression({spark_}),
                                        {TagConstraint::AntiAffinity(TagExpression({spark_}))},
                                        kNodeGroupNode}});
  const ContainerId subject = Place(NodeId(0), {spark_});
  const std::vector<TagId> tags = {spark_};
  const auto eval =
      ConstraintEvaluator::EvaluateConstraint(state_, c, subject, NodeId(0), tags);
  EXPECT_TRUE(eval.satisfied);
}

TEST_F(ViolationTest, ConjunctionOfTargetsMustAllHold) {
  const TagId mem = manager_.tags().Intern("mem");
  AtomicConstraint atomic{TagExpression({storm_}),
                          {TagConstraint::Affinity(TagExpression({hb_})),
                           TagConstraint::Affinity(TagExpression({mem}))},
                          kNodeGroupNode};
  const auto c = PlacementConstraint::Simple(atomic);
  Place(NodeId(0), {hb_});
  const ContainerId subject = Place(NodeId(0), {storm_});
  const std::vector<TagId> tags = {storm_};
  EXPECT_FALSE(
      ConstraintEvaluator::EvaluateConstraint(state_, c, subject, NodeId(0), tags).satisfied);
  Place(NodeId(0), {mem});
  EXPECT_TRUE(
      ConstraintEvaluator::EvaluateConstraint(state_, c, subject, NodeId(0), tags).satisfied);
}

TEST_F(ViolationTest, EvaluateAllCountsSubjects) {
  ASSERT_TRUE(manager_
                  .AddFromText("{spark, {spark, 0, 0}, node}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  Place(NodeId(0), {spark_});
  Place(NodeId(0), {spark_});
  Place(NodeId(1), {spark_});
  const auto report = ConstraintEvaluator::EvaluateAll(state_, manager_);
  EXPECT_EQ(report.total_subjects, 3);
  EXPECT_EQ(report.violated_subjects, 2);
  EXPECT_NEAR(report.ViolationFraction(), 2.0 / 3.0, 1e-12);
}

TEST_F(ViolationTest, EvaluateAllIgnoresShortRunningContainers) {
  ASSERT_TRUE(manager_
                  .AddFromText("{spark, {spark, 0, 0}, node}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  // Task-based containers carry tags but are not long-running.
  ASSERT_TRUE(
      state_.Allocate(ApplicationId(2), NodeId(0), Resource(1, 1), {spark_}, false).ok());
  const auto report = ConstraintEvaluator::EvaluateAll(state_, manager_);
  EXPECT_EQ(report.total_subjects, 0);
}

TEST_F(ViolationTest, WeightedExtentScalesByWeight) {
  ASSERT_TRUE(manager_
                  .AddFromText("{spark, {spark, 0, 0}, node} #4", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  Place(NodeId(0), {spark_});
  Place(NodeId(0), {spark_});
  const auto report = ConstraintEvaluator::EvaluateAll(state_, manager_);
  EXPECT_DOUBLE_EQ(report.total_extent, 2.0);     // each sees 1 other
  EXPECT_DOUBLE_EQ(report.weighted_extent, 8.0);  // x4 weight
}

TEST_F(ViolationTest, DetailsCollectedOnRequest) {
  ASSERT_TRUE(manager_
                  .AddFromText("{spark, {spark, 0, 0}, node}", ConstraintOrigin::kApplication,
                               ApplicationId(1))
                  .ok());
  Place(NodeId(0), {spark_});
  const auto with = ConstraintEvaluator::EvaluateAll(state_, manager_, true);
  EXPECT_EQ(with.details.size(), 1u);
  const auto without = ConstraintEvaluator::EvaluateAll(state_, manager_, false);
  EXPECT_TRUE(without.details.empty());
}

}  // namespace
}  // namespace medea
