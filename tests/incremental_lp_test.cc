// Copyright (c) Medea reproduction authors.
// Tests for the warm-started incremental LP solver and its branch-and-bound
// integration: randomized cold-vs-warm equivalence on placement-shaped MIP
// models, LP-level bound-change sequences against the dense solver, and the
// kTimeLimit node-relaxation regression.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/solver/incremental_lp.h"
#include "src/solver/mip.h"
#include "src/solver/model.h"
#include "src/solver/simplex.h"

namespace medea::solver {
namespace {

// A random placement-shaped model: binary x_{c,n} with per-container
// assignment rows and per-node capacity rows — the shape the Fig. 5 ILP
// produces after pruning.
Model PlacementModel(int containers, int nodes, uint64_t seed) {
  Rng rng(seed);
  Model model;
  std::vector<std::vector<VarIndex>> x(static_cast<size_t>(containers));
  for (int c = 0; c < containers; ++c) {
    for (int n = 0; n < nodes; ++n) {
      x[static_cast<size_t>(c)].push_back(
          model.AddBinary(rng.NextDouble(0.5, 1.5)));
    }
  }
  for (int c = 0; c < containers; ++c) {
    std::vector<std::pair<VarIndex, double>> terms;
    for (int n = 0; n < nodes; ++n) {
      terms.emplace_back(x[static_cast<size_t>(c)][static_cast<size_t>(n)], 1.0);
    }
    model.AddRow(std::move(terms), RowSense::kLessEqual, 1.0);
  }
  for (int n = 0; n < nodes; ++n) {
    std::vector<std::pair<VarIndex, double>> mem;
    std::vector<std::pair<VarIndex, double>> cpu;
    for (int c = 0; c < containers; ++c) {
      mem.emplace_back(x[static_cast<size_t>(c)][static_cast<size_t>(n)],
                       rng.NextDouble(1.0, 4.0));
      cpu.emplace_back(x[static_cast<size_t>(c)][static_cast<size_t>(n)], 1.0);
    }
    model.AddRow(std::move(mem), RowSense::kLessEqual, 6.0);
    model.AddRow(std::move(cpu), RowSense::kLessEqual, 3.0);
  }
  return model;
}

// Like Model::IsFeasible but without the integrality check — LP relaxation
// values are legitimately fractional.
bool IsLpFeasible(const Model& model, const std::vector<double>& x, double tol) {
  for (int j = 0; j < model.num_variables(); ++j) {
    const auto& col = model.column(j);
    const double v = x[static_cast<size_t>(j)];
    if (v < col.lower - tol || v > col.upper + tol) {
      return false;
    }
  }
  for (int r = 0; r < model.num_rows(); ++r) {
    const auto& row = model.row(r);
    double lhs = 0.0;
    for (const auto& [var, coeff] : row.terms) {
      lhs += coeff * x[static_cast<size_t>(var)];
    }
    const bool ok = row.sense == RowSense::kLessEqual      ? lhs <= row.rhs + tol
                    : row.sense == RowSense::kGreaterEqual ? lhs >= row.rhs - tol
                                                           : std::fabs(lhs - row.rhs) <= tol;
    if (!ok) {
      return false;
    }
  }
  return true;
}

MipOptions ExactOptions(bool incremental) {
  MipOptions options;
  options.time_limit_seconds = 0.0;  // unlimited: both paths finish the search
  options.relative_gap = 0.0;
  options.absolute_gap = 1e-9;
  options.use_incremental_lp = incremental;
  return options;
}

// Tentpole equivalence: across ~50 random placement MIPs, the warm-started
// search and the cold dense search must agree on status and objective.
TEST(IncrementalEquivalence, RandomPlacementMips) {
  int multi_node_searches = 0;
  long long warm_hits = 0;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const int containers = static_cast<int>(2 + seed % 4);  // 2..5
    const int nodes = static_cast<int>(4 + seed % 5);       // 4..8
    const Model model = PlacementModel(containers, nodes, seed * 7919);

    MipStats cold_stats;
    const Solution cold = SolveMip(model, ExactOptions(false), &cold_stats);
    MipStats warm_stats;
    const Solution warm = SolveMip(model, ExactOptions(true), &warm_stats);

    ASSERT_EQ(cold.status, warm.status) << "seed " << seed;
    ASSERT_EQ(cold.status, SolveStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(cold.objective, warm.objective, 1e-6) << "seed " << seed;
    EXPECT_TRUE(model.IsFeasible(warm.values, 1e-5)) << "seed " << seed;
    EXPECT_EQ(warm_stats.warm_start_hits + warm_stats.cold_restarts,
              warm_stats.nodes_explored)
        << "seed " << seed;
    if (warm_stats.nodes_explored > 1) {
      ++multi_node_searches;
      warm_hits += warm_stats.warm_start_hits;
    }
  }
  // Warm starts must actually engage on searches with more than one node.
  ASSERT_GT(multi_node_searches, 0);
  EXPECT_GT(warm_hits, 0);
}

// LP-level equivalence: random branch-like bound-fix/unfix sequences, the
// incremental solver against a cold dense solve after every change.
TEST(IncrementalEquivalence, RandomBoundChangeSequences) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Model model = PlacementModel(3, 6, seed * 104729);
    IncrementalLpSolver inc(model);
    Rng rng(seed);
    for (int step = 0; step < 30; ++step) {
      const int j = static_cast<int>(rng.NextBounded(
          static_cast<uint64_t>(model.num_variables())));
      const int kind = static_cast<int>(rng.NextBounded(3));
      const double lo = kind == 0 ? 0.0 : (kind == 1 ? 1.0 : 0.0);
      const double up = kind == 1 ? 1.0 : (kind == 0 ? 0.0 : 1.0);
      model.SetBounds(j, lo, up);
      inc.SetBounds(j, lo, up);

      const Solution dense = SolveLp(model);
      const Solution fast = inc.Solve();
      ASSERT_EQ(dense.status, fast.status) << "seed " << seed << " step " << step;
      if (dense.status == SolveStatus::kOptimal) {
        EXPECT_NEAR(dense.objective, fast.objective, 1e-6)
            << "seed " << seed << " step " << step;
        EXPECT_TRUE(IsLpFeasible(model, fast.values, 1e-5))
            << "seed " << seed << " step " << step;
      }
    }
    EXPECT_GT(inc.stats().warm_solves, 0) << "seed " << seed;
  }
}

// Infeasible child nodes must be detected, and the basis must survive them
// so the sibling still warm-starts.
TEST(IncrementalLp, InfeasibleChildThenSibling) {
  Model model;
  const VarIndex a = model.AddBinary(1.0);
  const VarIndex b = model.AddBinary(1.0);
  model.AddRow({{a, 1.0}, {b, 1.0}}, RowSense::kGreaterEqual, 1.0);
  IncrementalLpSolver inc(model);
  EXPECT_EQ(inc.Solve().status, SolveStatus::kOptimal);

  inc.SetBounds(a, 0.0, 0.0);
  inc.SetBounds(b, 0.0, 0.0);  // forces the >= 1 row infeasible
  EXPECT_EQ(inc.Solve().status, SolveStatus::kInfeasible);

  inc.SetBounds(b, 1.0, 1.0);  // the sibling branch is feasible again
  const Solution sibling = inc.Solve();
  ASSERT_EQ(sibling.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sibling.objective, 1.0, 1e-9);
  EXPECT_GT(inc.stats().warm_solves, 0);
}

// Minimization models flow through the internal maximize convention.
TEST(IncrementalLp, MinimizationObjective) {
  Model model;
  const VarIndex a = model.AddContinuous(0.0, 10.0, 2.0);
  const VarIndex b = model.AddContinuous(0.0, 10.0, 3.0);
  model.AddRow({{a, 1.0}, {b, 1.0}}, RowSense::kGreaterEqual, 4.0);
  model.SetMaximize(false);
  IncrementalLpSolver inc(model);
  const Solution solution = inc.Solve();
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 8.0, 1e-7);  // a = 4, b = 0

  inc.SetBounds(a, 0.0, 1.0);
  const Solution tightened = inc.Solve();
  ASSERT_EQ(tightened.status, SolveStatus::kOptimal);
  EXPECT_NEAR(tightened.objective, 2.0 * 1.0 + 3.0 * 3.0, 1e-7);
}

// Regression: a node relaxation that returns kTimeLimit (LP budget expiry)
// must be treated like any other failed LP — search marked incomplete,
// lp_failures counted — instead of indexing the empty lp.values.
TEST(MipLpTimeLimit, NodeRelaxationExpiryIsAFailureNotACrash) {
  for (const bool incremental : {false, true}) {
    const Model model = PlacementModel(4, 6, 42);
    MipOptions options;
    options.time_limit_seconds = 0.0;  // the MIP itself is unlimited
    options.presolve = false;
    options.use_incremental_lp = incremental;
    options.lp.time_limit_seconds = 1e-9;  // every LP expires immediately
    MipStats stats;
    const Solution solution = SolveMip(model, options, &stats);
    EXPECT_EQ(solution.status, SolveStatus::kTimeLimit) << incremental;
    EXPECT_FALSE(solution.HasSolution()) << incremental;
    EXPECT_GT(stats.lp_failures, 0) << incremental;
    EXPECT_TRUE(stats.hit_time_limit) << incremental;
  }
}

// Regression: an expired MIP deadline must not grant post-deadline nodes a
// fresh 10ms LP budget each. The LPs run with a ~zero budget, so the whole
// solve returns promptly even though the node cap is huge.
TEST(MipLpTimeLimit, ExpiredBudgetDoesNotGrantGracePeriods) {
  const Model model = PlacementModel(6, 10, 7);
  MipOptions options;
  options.time_limit_seconds = 1e-6;  // effectively expired at entry
  options.max_nodes = 0;
  options.presolve = false;
  MipStats stats;
  const auto start = std::chrono::steady_clock::now();
  const Solution solution = SolveMip(model, options, &stats);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_TRUE(stats.hit_time_limit);
  EXPECT_FALSE(solution.status == SolveStatus::kOptimal);
  // Generous bound: with the old max(0.01, remaining) clamp this path could
  // burn 10ms per visited node; the fix keeps the whole solve well under it.
  EXPECT_LT(elapsed, 2.0);
}

// New MipStats fields are populated by a normal search.
TEST(MipStatsPlumbing, WarmColdPivotTimeCounters) {
  const Model model = PlacementModel(5, 8, 3);
  MipStats stats;
  const Solution solution = SolveMip(model, ExactOptions(true), &stats);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_GT(stats.lp_solves, 0);
  EXPECT_GT(stats.total_pivots, 0);
  EXPECT_GT(stats.lp_time_seconds, 0.0);
  EXPECT_EQ(stats.warm_start_hits + stats.cold_restarts, stats.nodes_explored);
}

// The dual + primal pivot split must tile the total: every pivot the solver
// takes is attributed to exactly one phase.
TEST(MipStatsPlumbing, DualPrimalPivotSplitTilesTheTotal) {
  const Model model = PlacementModel(5, 8, 3);
  MipStats stats;
  const Solution solution = SolveMip(model, ExactOptions(true), &stats);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_EQ(stats.dual_pivots + stats.primal_pivots, stats.total_pivots);
  EXPECT_GE(stats.dual_pivots, 0);
  EXPECT_GE(stats.primal_pivots, 0);
}

// Tentpole property: after a single branching bound change, the dual-simplex
// warm restart must agree with a cold dense solve of the same model —
// status, objective, and reduced-cost optimality conditions — across the
// bench corpus (same generator/sizes/seeds as bench_solver_micro).
TEST(DualWarmRestart, SingleBoundChangeMatchesColdDense) {
  long long total_dual_pivots = 0;
  long long total_warm_pivots = 0;
  long long total_cold_pivots = 0;
  for (const auto [containers, nodes] : {std::pair(10, 5), std::pair(12, 6), std::pair(16, 8)}) {
    for (const uint64_t seed : {3ULL, 5ULL, 7ULL, 11ULL, 13ULL}) {
      Model model = PlacementModel(containers, nodes, seed);
      IncrementalLpSolver inc(model);
      const Solution root = inc.Solve();
      ASSERT_EQ(root.status, SolveStatus::kOptimal)
          << containers << "x" << nodes << " seed " << seed;

      // Branch on the first fractional variable (fix to 0 = the down child);
      // fall back to the first free one on an integral vertex.
      int branch = -1;
      for (int j = 0; j < model.num_variables(); ++j) {
        const double v = root.values[static_cast<size_t>(j)];
        if (std::fabs(v - std::round(v)) > 1e-6) {
          branch = j;
          break;
        }
      }
      if (branch < 0) {
        for (int j = 0; j < model.num_variables(); ++j) {
          if (model.column(j).lower < model.column(j).upper) {
            branch = j;
            break;
          }
        }
      }
      ASSERT_GE(branch, 0);
      model.SetBounds(branch, 0.0, 0.0);
      inc.SetBounds(branch, 0.0, 0.0);

      const Solution warm = inc.Solve();
      LpStats dense_stats;
      const Solution dense = SolveLp(model, LpOptions(), &dense_stats);
      ASSERT_EQ(warm.status, dense.status) << containers << "x" << nodes << " seed " << seed;
      EXPECT_TRUE(inc.last_info().warm) << containers << "x" << nodes << " seed " << seed;
      if (dense.status != SolveStatus::kOptimal) {
        continue;
      }
      EXPECT_NEAR(warm.objective, dense.objective, 1e-6)
          << containers << "x" << nodes << " seed " << seed;
      EXPECT_TRUE(IsLpFeasible(model, warm.values, 1e-5));
      // Reduced-cost optimality conditions in the documented score sense:
      // basic (interior) columns 0, nonbasic-at-lower <= 0, at-upper >= 0.
      ASSERT_EQ(warm.reduced_costs.size(), static_cast<size_t>(model.num_variables()));
      for (int j = 0; j < model.num_variables(); ++j) {
        const auto& col = model.column(j);
        const double v = warm.values[static_cast<size_t>(j)];
        const double rc = warm.reduced_costs[static_cast<size_t>(j)];
        if (col.lower >= col.upper) {
          continue;  // fixed columns report 0 by convention
        }
        if (v > col.lower + 1e-6 && v < col.upper - 1e-6) {
          EXPECT_NEAR(rc, 0.0, 1e-6) << "interior var " << j;
        } else if (v <= col.lower + 1e-6 && v < col.upper - 1e-6) {
          EXPECT_LE(rc, 1e-6) << "at-lower var " << j;
        } else if (v >= col.upper - 1e-6 && v > col.lower + 1e-6) {
          EXPECT_GE(rc, -1e-6) << "at-upper var " << j;
        }
      }
      total_dual_pivots += inc.last_info().dual_pivots;
      total_warm_pivots += inc.last_info().pivots;
      total_cold_pivots += dense_stats.iterations;
    }
  }
  // The warm restart must engage the dual simplex and beat the cold pivot
  // count by a wide margin in aggregate — that is its whole reason to exist.
  EXPECT_GT(total_dual_pivots, 0);
  EXPECT_LT(total_warm_pivots * 3, total_cold_pivots);
}

// AddRow extends the basis in place: adding a VIOLATED cut after an optimal
// solve must re-optimize warm (dual pivots, no cold restart) and agree with
// a dense solve of the extended model.
TEST(AddRowTest, ViolatedCutRepairsWarmAndMatchesDense) {
  for (const uint64_t seed : {3ULL, 7ULL, 11ULL}) {
    Model model = PlacementModel(6, 4, seed);
    IncrementalLpSolver inc(model);
    const Solution root = inc.Solve();
    ASSERT_EQ(root.status, SolveStatus::kOptimal) << "seed " << seed;
    const int cold_solves_before = inc.stats().cold_solves;

    // A cut through the current vertex: sum of the three largest fractional
    // coordinates <= floor(their sum) — violated by construction whenever
    // the sum is fractional, valid for every integer point of a 0/1 row.
    std::vector<std::pair<int, double>> order;
    for (int j = 0; j < model.num_variables(); ++j) {
      order.emplace_back(j, root.values[static_cast<size_t>(j)]);
    }
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::vector<std::pair<VarIndex, double>> terms;
    double at_vertex = 0.0;
    for (int k = 0; k < 3; ++k) {
      terms.emplace_back(order[static_cast<size_t>(k)].first, 1.0);
      at_vertex += order[static_cast<size_t>(k)].second;
    }
    const double rhs = std::floor(at_vertex);
    if (at_vertex - rhs < 1e-6) {
      continue;  // vertex integral in these coordinates: nothing to repair
    }
    model.AddRow(terms, RowSense::kLessEqual, rhs);
    inc.AddRow(terms, RowSense::kLessEqual, rhs);

    const Solution warm = inc.Solve();
    const Solution dense = SolveLp(model);
    ASSERT_EQ(warm.status, dense.status) << "seed " << seed;
    ASSERT_EQ(warm.status, SolveStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(warm.objective, dense.objective, 1e-6) << "seed " << seed;
    EXPECT_TRUE(IsLpFeasible(model, warm.values, 1e-5)) << "seed " << seed;
    EXPECT_TRUE(inc.last_info().warm) << "seed " << seed;
    EXPECT_GT(inc.last_info().dual_pivots, 0) << "seed " << seed;
    EXPECT_EQ(inc.stats().cold_solves, cold_solves_before) << "seed " << seed;
  }
}

// A cut the current vertex already satisfies must not disturb the basis:
// the next solve is warm and takes zero pivots.
TEST(AddRowTest, SatisfiedRowKeepsTheOptimalBasis) {
  Model model = PlacementModel(6, 4, 3);
  IncrementalLpSolver inc(model);
  const Solution root = inc.Solve();
  ASSERT_EQ(root.status, SolveStatus::kOptimal);

  // sum(all) <= n is satisfied by any 0/1-bounded point.
  std::vector<std::pair<VarIndex, double>> terms;
  for (int j = 0; j < model.num_variables(); ++j) {
    terms.emplace_back(j, 1.0);
  }
  model.AddRow(terms, RowSense::kLessEqual, static_cast<double>(model.num_variables()));
  inc.AddRow(terms, RowSense::kLessEqual, static_cast<double>(model.num_variables()));

  const Solution after = inc.Solve();
  ASSERT_EQ(after.status, SolveStatus::kOptimal);
  EXPECT_NEAR(after.objective, root.objective, 1e-9);
  EXPECT_TRUE(inc.last_info().warm);
  EXPECT_EQ(inc.last_info().pivots, 0);
}

// AddRow before the first Solve() (no basis yet) must behave like building
// the model with the row from the start.
TEST(AddRowTest, BeforeFirstSolveActsLikeModelRow) {
  Model with_row = PlacementModel(5, 3, 7);
  Model without_row = with_row;
  std::vector<std::pair<VarIndex, double>> terms = {{0, 1.0}, {1, 1.0}, {2, 1.0}};
  with_row.AddRow(terms, RowSense::kLessEqual, 1.0);

  IncrementalLpSolver inc(without_row);
  inc.AddRow(terms, RowSense::kLessEqual, 1.0);
  const Solution a = inc.Solve();
  const Solution b = SolveLp(with_row);
  ASSERT_EQ(a.status, b.status);
  ASSERT_EQ(a.status, SolveStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-6);
}

// Interleaving cuts and branching bound changes — the cut loop followed by a
// dive — keeps the incremental solver in lockstep with dense re-solves.
TEST(AddRowTest, CutsInterleavedWithBoundChanges) {
  Model model = PlacementModel(6, 4, 13);
  IncrementalLpSolver inc(model);
  Rng rng(99);
  ASSERT_EQ(inc.Solve().status, SolveStatus::kOptimal);
  for (int step = 0; step < 12; ++step) {
    if (step % 3 == 2) {
      // A random satisfied-or-violated 0/1 row over three random variables.
      std::vector<std::pair<VarIndex, double>> terms;
      for (int k = 0; k < 3; ++k) {
        const int j = static_cast<int>(rng.NextBounded(
            static_cast<uint64_t>(model.num_variables())));
        terms.emplace_back(j, 1.0);
      }
      model.AddRow(terms, RowSense::kLessEqual, 2.0);
      inc.AddRow(terms, RowSense::kLessEqual, 2.0);
    } else {
      const int j = static_cast<int>(rng.NextBounded(
          static_cast<uint64_t>(model.num_variables())));
      const double fix = rng.NextBool(0.5) ? 1.0 : 0.0;
      model.SetBounds(j, fix, fix);
      inc.SetBounds(j, fix, fix);
    }
    const Solution dense = SolveLp(model);
    const Solution fast = inc.Solve();
    ASSERT_EQ(dense.status, fast.status) << "step " << step;
    if (dense.status == SolveStatus::kOptimal) {
      EXPECT_NEAR(dense.objective, fast.objective, 1e-6) << "step " << step;
      EXPECT_TRUE(IsLpFeasible(model, fast.values, 1e-5)) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace medea::solver
