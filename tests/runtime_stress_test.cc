// Copyright (c) Medea reproduction authors.
// Concurrency stress test for the TwoSchedulerRuntime, designed to run under
// ThreadSanitizer (the `tsan` CMake preset / CI job): several client threads
// submit LRAs while task jobs churn, nodes fail and recover, and migration
// cycles run — all racing against the LRA scheduler thread and the heartbeat
// thread. A ScopedInvariantAudit independently certifies every committed
// plan and state mutation while the races are in flight, and the final state
// must pass InvariantChecker::CheckState from first principles.
// medea-lint: allow-file(raw-sync): deliberate raw std::thread use — client threads
// simulate untrusted external callers that do not go through src/common/sync.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/two_scheduler_runtime.h"
#include "src/schedulers/greedy.h"
#include "src/verify/invariant_checker.h"
#include "src/workload/lra_templates.h"

namespace medea::runtime {
namespace {

std::unique_ptr<LraScheduler> MakeScheduler() {
  SchedulerConfig config;
  config.node_pool_size = 32;
  config.seed = 7;
  return std::make_unique<GreedyScheduler>(GreedyOrdering::kNodeCandidates, config);
}

RuntimeConfig StressConfig() {
  RuntimeConfig config;
  config.num_nodes = 32;
  config.num_racks = 4;
  config.num_upgrade_domains = 4;
  config.num_service_units = 4;
  config.heartbeat_period = std::chrono::milliseconds(1);
  config.plan_queue_capacity = 2;  // small, so backpressure actually engages
  config.max_lra_attempts = 3;
  config.migration_every_heartbeats = 16;
  return config;
}

TEST(RuntimeStressTest, ConcurrentSubmissionsChurnAndFailuresKeepInvariants) {
  // The obs registry and trace ring are hammered by the instrumented runtime
  // threads throughout this test, so the TSan run covers the metrics layer
  // against the exact workload that reports into it.
  obs::EnableMetrics(true);
  obs::MetricsRegistry::Default().Reset();
  obs::TraceRecorder::Default().Enable(1 << 12);

  verify::ScopedInvariantAudit audit(/*abort_on_violation=*/false);
  TwoSchedulerRuntime runtime(StressConfig(), MakeScheduler());
  runtime.Start();

  constexpr int kSubmitters = 3;
  // Sized so the run drains within the idle timeout even under TSan's
  // ~10-20x slowdown on a single core.
  constexpr int kLrasPerSubmitter = 8;
  std::atomic<int> submitted{0};

  std::vector<std::thread> workers;
  // LRA submitters: template-built apps with real tag constraints.
  for (int s = 0; s < kSubmitters; ++s) {
    workers.emplace_back([&runtime, &submitted, s] {
      for (int i = 0; i < kLrasPerSubmitter; ++i) {
        const ApplicationId app(static_cast<uint32_t>(1 + s * 100 + i));
        LraSpec spec = runtime.BuildSpec([&](TagPool& tags) {
          switch (i % 3) {
            case 0:
              return MakeHBaseInstance(app, tags, /*num_workers=*/4);
            case 1:
              return MakeTensorFlowInstance(app, tags, /*num_workers=*/3, /*num_ps=*/1);
            default:
              return MakeGenericLra(app, tags, 3, "svc" + std::to_string(s));
          }
        });
        runtime.SubmitLra(std::move(spec));
        submitted.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  // Task churn: short-lived jobs keep the heartbeat allocating (and
  // invalidating LRA snapshots, so the stale-plan path is exercised).
  workers.emplace_back([&runtime] {
    for (int i = 0; i < 20; ++i) {
      std::vector<TaskRequest> tasks;
      for (int t = 0; t < 6; ++t) {
        tasks.emplace_back(Resource(512, 1), /*duration_ms=*/4 + (i + t) % 7);
      }
      runtime.SubmitTaskJob(std::move(tasks));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  // Chaos: nodes fail and recover while placements are being committed.
  workers.emplace_back([&runtime] {
    for (int i = 0; i < 6; ++i) {
      const NodeId node(static_cast<uint32_t>((i * 5) % 32));
      runtime.NodeDown(node);
      std::this_thread::sleep_for(std::chrono::milliseconds(4));
      runtime.NodeUp(node);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  // Readers: concurrent observation must be clean under TSan too.
  workers.emplace_back([&runtime] {
    for (int i = 0; i < 40; ++i) {
      (void)runtime.metrics();
      (void)runtime.pending_lras();
      (void)runtime.pending_tasks();
      (void)runtime.running_tasks();
      const ClusterState snapshot = runtime.SnapshotState();
      (void)snapshot.num_containers();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (std::thread& worker : workers) {
    worker.join();
  }

  ASSERT_TRUE(runtime.WaitLraIdle(std::chrono::minutes(3)));
  runtime.Stop();

  const RuntimeMetrics metrics = runtime.metrics();
  EXPECT_GT(metrics.lra_cycles, 0);
  EXPECT_GT(metrics.heartbeats, 0);
  // Every submission is eventually resolved: placed or rejected.
  EXPECT_EQ(metrics.lras_placed + metrics.lras_rejected,
            submitted.load(std::memory_order_relaxed));

  // The concurrent audit saw every commit; none may have violated an
  // invariant.
  EXPECT_GT(audit.states_audited(), 0);
  const std::vector<std::string> failures = audit.failures();
  EXPECT_TRUE(failures.empty()) << failures.front();

  // And the final state must be internally consistent from first principles.
  runtime.WithStateLocked([](const ClusterState& state, const ConstraintManager& manager) {
    const auto report = verify::InvariantChecker::CheckState(state, &manager);
    EXPECT_TRUE(report.ok()) << report.ToString();
  });

  // The instrumented hot paths actually reported: both runtime threads left
  // spans in the ring and the commit path counted every placement.
  EXPECT_GT(obs::MetricsRegistry::Default()
                .CounterNamed("runtime.plans_committed")
                .value(),
            0);
  EXPECT_EQ(obs::MetricsRegistry::Default().CounterNamed("runtime.lras_placed").value(),
            metrics.lras_placed);
  EXPECT_FALSE(obs::TraceRecorder::Default().Snapshot().empty());
  obs::EnableMetrics(false);
  obs::TraceRecorder::Default().Disable();
}

TEST(RuntimeStressTest, BackpressureBlocksProducerUntilConsumerDrains) {
  PlanQueue queue(/*capacity=*/1);
  ASSERT_TRUE(queue.Push(PlanEnvelope{}));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(queue.Push(PlanEnvelope{}));  // blocks: queue is full
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  PlanEnvelope envelope;
  ASSERT_TRUE(queue.TryPop(&envelope));
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(queue.size(), 1u);
}

TEST(RuntimeStressTest, CloseUnblocksProducerAndKeepsPendingPoppable) {
  PlanQueue queue(/*capacity=*/1);
  ASSERT_TRUE(queue.Push(PlanEnvelope{}));
  std::thread producer([&] {
    EXPECT_FALSE(queue.Push(PlanEnvelope{}));  // closed while blocked
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  producer.join();
  PlanEnvelope envelope;
  EXPECT_TRUE(queue.TryPop(&envelope));  // pre-close envelope drains
  EXPECT_FALSE(queue.TryPop(&envelope));
  EXPECT_FALSE(queue.Push(PlanEnvelope{}));
}

TEST(RuntimeStressTest, StopDrainsComputedPlans) {
  RuntimeConfig config = StressConfig();
  // A slow heartbeat, so Stop() itself must drain whatever the LRA thread
  // computed but the heartbeat never consumed.
  config.heartbeat_period = std::chrono::milliseconds(250);
  TwoSchedulerRuntime runtime(config, MakeScheduler());
  runtime.Start();
  for (int i = 0; i < 4; ++i) {
    const ApplicationId app(static_cast<uint32_t>(1000 + i));
    runtime.SubmitLra(
        runtime.BuildSpec([&](TagPool& tags) { return MakeGenericLra(app, tags, 2, "drain"); }));
  }
  // Give the LRA thread a moment to compute, then stop before a heartbeat.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  runtime.Stop();
  const RuntimeMetrics metrics = runtime.metrics();
  EXPECT_GT(metrics.lras_placed + metrics.lras_rejected + metrics.lra_resubmissions, 0);
  runtime.WithStateLocked([](const ClusterState& state, const ConstraintManager& manager) {
    const auto report = verify::InvariantChecker::CheckState(state, &manager);
    EXPECT_TRUE(report.ok()) << report.ToString();
  });
}

}  // namespace
}  // namespace medea::runtime
