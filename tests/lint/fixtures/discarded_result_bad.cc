// medea-lint fixture: MUST produce discarded-result findings. A
// Result<T>/Status used as a bare statement silently swallows the error
// path; this is the dynamic complement to [[nodiscard]] (which cannot see
// through some macro and template shapes).
#include "common/result.h"

namespace medea::lintfix {

Status PersistCheckpoint();
Result<int> LoadCheckpoint();

void Run() {
  PersistCheckpoint();  // error: Status discarded
  LoadCheckpoint();     // error: Result<int> discarded
}

}  // namespace medea::lintfix
