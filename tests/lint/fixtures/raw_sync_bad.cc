// medea-lint fixture: MUST produce raw-sync findings.
// Raw standard-library synchronization primitives outside src/common/sync/
// bypass both Clang Thread Safety Analysis and medea-lint's lock-order
// extraction, so every one of these lines is an error.
#include <condition_variable>
#include <mutex>
#include <thread>

namespace medea::lintfix {

std::mutex g_mu;                      // error: raw std::mutex
std::condition_variable g_cv;         // error: raw std::condition_variable

void SpawnRaw() {
  std::thread worker([] {});          // error: raw std::thread
  std::lock_guard<std::mutex> lock(g_mu);  // error: lock_guard (and mutex)
  worker.join();
}

}  // namespace medea::lintfix
