// medea-lint fixture: clean sibling of lock_order_bad.cc — no findings.
// Every function acquires in the same global order (Alpha before Beta,
// TwoSchedulerRuntime before PlanQueue per the documented order), and
// manual Lock/Unlock pairs release before re-acquiring.
#include "common/sync/mutex.h"

namespace medea::lintfix {

struct Alpha {
  sync::Mutex mu_;
};
struct Beta {
  sync::Mutex mu_;
};

void TakesAlphaThenBetaA(Alpha* a, Beta* b) {
  sync::MutexLock outer(&a->mu_);
  sync::MutexLock inner(&b->mu_);
}

void TakesAlphaThenBetaB(Alpha* a, Beta* b) {
  sync::MutexLock outer(&a->mu_);
  {
    sync::MutexLock inner(&b->mu_);
  }
}

// Hand-over-hand with manual Lock/Unlock: Beta is never acquired while
// Alpha is held in the reverse direction.
void HandOverHand(Alpha* a, Beta* b) {
  a->mu_.Lock();
  a->mu_.Unlock();
  b->mu_.Lock();
  b->mu_.Unlock();
}

struct PlanQueue {
  sync::Mutex mu_;
};
struct TwoSchedulerRuntime {
  sync::Mutex mu_;
};

void RightDocumentedOrder(PlanQueue* queue, TwoSchedulerRuntime* runtime) {
  sync::MutexLock r(&runtime->mu_);
  sync::MutexLock q(&queue->mu_);
}

}  // namespace medea::lintfix
