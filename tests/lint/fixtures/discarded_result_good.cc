// medea-lint fixture: clean sibling of discarded_result_bad.cc — no
// findings. Every Result/Status is consumed: checked, propagated, bound,
// or explicitly voided.
#include "common/result.h"

namespace medea::lintfix {

Status PersistCheckpoint();
Result<int> LoadCheckpoint();

Status RunChecked() {
  Status st = PersistCheckpoint();   // bound
  if (!st.ok()) return st;           // propagated
  auto loaded = LoadCheckpoint();    // bound
  if (!loaded.ok()) return loaded.status();
  MEDEA_CHECK(PersistCheckpoint().ok());  // consumed inside a check
  (void)PersistCheckpoint();         // explicitly voided
  return Status::Ok();
}

}  // namespace medea::lintfix
