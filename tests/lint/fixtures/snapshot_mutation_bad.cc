// medea-lint fixture: MUST produce snapshot-mutation findings.
// Snapshots returned by EpochClusterState::Acquire() are frozen: their COW
// shards are shared with concurrent readers, so calling a mutating
// ClusterState method through one — or const_casting the constness away —
// is a correctness bug, not a style issue.
#include "cluster/epoch_state.h"

namespace medea::lintfix {

void MutateThroughSnapshot(cluster::EpochClusterState& epoch) {
  auto snap = epoch.Acquire();
  snap->state.Allocate("app-1", "node-1", {});   // error: mutator via snapshot
  snap->state.SetNodeAvailable("node-2", false);  // error: mutator via snapshot
}

void ConstCastEscape(cluster::EpochClusterState& epoch) {
  auto snap = epoch.Acquire();
  auto& mutable_state =
      const_cast<cluster::ClusterState&>(snap->state);  // error: const_cast
  mutable_state.Clear();
}

}  // namespace medea::lintfix
