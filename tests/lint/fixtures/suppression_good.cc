// medea-lint fixture: violations present but correctly suppressed — the run
// must report 0 errors and a non-zero suppressed count. Both suppression
// forms appear: line-level allow() (comment-above and trailing styles) and
// a whole-file allow-file().
// medea-lint: allow-file(metric-name): fixture metrics are never scraped.
#include <mutex>

#include "obs/metrics.h"

namespace medea::lintfix {

// medea-lint: allow(raw-sync): interop with a third-party API that hands us a std::mutex.
std::mutex g_thirdparty_mu;

std::mutex g_other_mu;  // medea-lint: allow(raw-sync): same third-party API.

void Emit() {
  obs::Count("lint_fixture.suppressed_by_allow_file");  // covered by allow-file
}

}  // namespace medea::lintfix
