// medea-lint fixture: MUST produce lock-order findings (three distinct
// shapes: a cycle, a documented-order contradiction, and a self-deadlock).
#include "common/sync/mutex.h"

namespace medea::lintfix {

struct Alpha {
  sync::Mutex mu_;
};
struct Beta {
  sync::Mutex mu_;
};

// Together these two functions close the cycle
// Alpha::mu_ -> Beta::mu_ -> Alpha::mu_ (potential deadlock).
void TakesAlphaThenBeta(Alpha* a, Beta* b) {
  sync::MutexLock outer(&a->mu_);
  sync::MutexLock inner(&b->mu_);
}

void TakesBetaThenAlpha(Alpha* a, Beta* b) {
  sync::MutexLock outer(&b->mu_);
  sync::MutexLock inner(&a->mu_);
}

// Contradicts the documented order TwoSchedulerRuntime::mu_ -> PlanQueue::mu_
// even without closing a cycle in this file.
struct PlanQueue {
  sync::Mutex mu_;
};
struct TwoSchedulerRuntime {
  sync::Mutex mu_;
};

void WrongDocumentedOrder(PlanQueue* queue, TwoSchedulerRuntime* runtime) {
  sync::MutexLock q(&queue->mu_);
  sync::MutexLock r(&runtime->mu_);
}

// sync::Mutex is non-reentrant: re-acquiring a held mutex self-deadlocks.
void SelfDeadlock(Alpha* a) {
  sync::MutexLock first(&a->mu_);
  sync::MutexLock second(&a->mu_);
}

}  // namespace medea::lintfix
