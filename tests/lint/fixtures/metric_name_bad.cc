// medea-lint fixture: MUST produce metric-name findings. Metric-name
// string literals must appear in docs/metric_names.txt; dynamic names need
// a wildcard entry covering their prefix.
#include <string>

#include "obs/metrics.h"

namespace medea::lintfix {

void EmitUnregistered(const std::string& shard) {
  obs::Count("lint_fixture.not_registered");             // error: unknown name
  obs::Observe("lint_fixture.typo_hist_ms", 1.0);        // error: unknown name
  obs::SetGauge("lint_fixture.dyn_unregistered." + shard, 1);  // error: no wildcard
  obs::ScopedLatencyTimer timer("lint_fixture.no_such_timer_ms");  // error
}

}  // namespace medea::lintfix
