// medea-lint fixture: MUST produce bad-suppression findings (and the
// underlying raw-sync finding survives, since a malformed allow() suppresses
// nothing). A suppression without a reason is exactly the silent convention
// drift the tool exists to prevent.
#include <mutex>

namespace medea::lintfix {

// medea-lint: allow(raw-sync)
std::mutex g_mu;  // error: raw-sync (the reasonless allow above is inert)

// medea-lint: allow(no-such-check): misspelled check id
int g_unused = 0;

// medea-lint: allowing everything forever
int g_also_unused = 0;

}  // namespace medea::lintfix
