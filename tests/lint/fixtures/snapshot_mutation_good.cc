// medea-lint fixture: clean sibling of snapshot_mutation_bad.cc — no
// findings. Snapshots are only read; all mutation goes through the epoch
// commit path, which copies the affected shards before touching them.
#include "cluster/epoch_state.h"

namespace medea::lintfix {

int ReadThroughSnapshot(cluster::EpochClusterState& epoch) {
  auto snap = epoch.Acquire();
  int nodes = static_cast<int>(snap->state.nodes().size());  // const access
  return nodes + static_cast<int>(snap->epoch);
}

void MutateThroughCommit(cluster::EpochClusterState& epoch) {
  epoch.Commit([](cluster::ClusterState& state) {
    state.SetNodeAvailable("node-2", true);  // fine: inside Commit, on the copy
  });
}

}  // namespace medea::lintfix
