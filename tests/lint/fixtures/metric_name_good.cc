// medea-lint fixture: clean sibling of metric_name_bad.cc — no findings.
// Uses names registered in docs/metric_names.txt (the `lint_fixture.*`
// section exists exactly for this corpus), including a wildcard-covered
// dynamic name.
#include <string>

#include "obs/metrics.h"

namespace medea::lintfix {

void EmitRegistered(const std::string& shard) {
  obs::Count("lint_fixture.registered_counter");
  obs::Observe("lint_fixture.registered_hist_ms", 1.0);
  obs::SetGauge("lint_fixture.dyn." + shard, 1);  // covered by lint_fixture.dyn.*
  obs::ScopedLatencyTimer timer("lint_fixture.registered_timer_ms");
}

}  // namespace medea::lintfix
