// medea-lint fixture: clean sibling of raw_sync_bad.cc — no findings.
// Uses the annotated wrappers from src/common/sync/ exclusively; the one
// std:: mention is the hardware_concurrency() query, which creates no thread
// and takes no lock, so it is explicitly allowed.
#include <thread>

#include "common/sync/mutex.h"
#include "common/sync/thread.h"

namespace medea::lintfix {

sync::Mutex g_mu;

void SpawnWrapped() {
  unsigned hw = std::thread::hardware_concurrency();  // allowed query
  sync::Thread worker("lint-fixture", [hw] { (void)hw; });
  {
    sync::MutexLock lock(&g_mu);
  }
  worker.Join();
}

}  // namespace medea::lintfix
