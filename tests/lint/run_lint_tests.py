#!/usr/bin/env python3
"""Fixture tests for medea-lint (tools/medea_lint).

Each fixture under tests/lint/fixtures/ is linted on its own and the outcome
is compared against the expectation table below: which checks must fire (with
minimum counts), which must stay silent, the exit code, and — for the
suppression fixtures — the suppressed count. Every check has a violating
fixture and a clean sibling, so a check that stops firing (or starts
over-firing) fails this suite, not just CI's full-tree run.

Run directly:  python3 tests/lint/run_lint_tests.py
Via ctest:     ctest -R lint_fixtures
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(REPO, "tools", "medea_lint")
FIXTURES = os.path.join(HERE, "fixtures")

# fixture -> (exit code, {check: min count}, min suppressed).
# Checks not listed must not fire at all.
EXPECT = {
    "raw_sync_bad.cc": (1, {"raw-sync": 5}, 0),
    "raw_sync_good.cc": (0, {}, 0),
    "snapshot_mutation_bad.cc": (1, {"snapshot-mutation": 3}, 0),
    "snapshot_mutation_good.cc": (0, {}, 0),
    "lock_order_bad.cc": (1, {"lock-order": 3}, 0),
    "lock_order_good.cc": (0, {}, 0),
    "discarded_result_bad.cc": (1, {"discarded-result": 2}, 0),
    "discarded_result_good.cc": (0, {}, 0),
    "metric_name_bad.cc": (1, {"metric-name": 4}, 0),
    "metric_name_good.cc": (0, {}, 0),
    "suppression_good.cc": (0, {}, 3),
    "suppression_bad.cc": (1, {"bad-suppression": 3, "raw-sync": 1}, 0),
}


def run_lint(fixture: str) -> tuple[int, dict]:
    with tempfile.NamedTemporaryFile(mode="r", suffix=".json",
                                     delete=False) as tf:
        json_path = tf.name
    try:
        proc = subprocess.run(
            [sys.executable, LINT, os.path.join(FIXTURES, fixture),
             "--json", json_path],
            capture_output=True, text=True, cwd=REPO, timeout=120)
        with open(json_path, encoding="utf-8") as f:
            report = json.load(f)
    finally:
        os.unlink(json_path)
    return proc.returncode, report


def main() -> int:
    present = sorted(f for f in os.listdir(FIXTURES) if f.endswith(".cc"))
    failures: list[str] = []
    if set(present) != set(EXPECT):
        failures.append(
            f"fixture set mismatch: on disk {present} vs expected "
            f"{sorted(EXPECT)}")

    for fixture, (want_exit, want_counts, want_suppressed) in sorted(
            EXPECT.items()):
        if fixture not in present:
            continue
        rc, report = run_lint(fixture)
        counts = report.get("counts_by_check", {})
        suppressed = report.get("suppressed", 0)
        label = f"[{fixture}]"
        if rc != want_exit:
            failures.append(f"{label} exit {rc}, want {want_exit}")
        for check, n in want_counts.items():
            if counts.get(check, 0) < n:
                failures.append(
                    f"{label} check '{check}' fired {counts.get(check, 0)}x, "
                    f"want >= {n}")
        for check, n in counts.items():
            if check not in want_counts and n:
                failures.append(
                    f"{label} unexpected check '{check}' fired {n}x")
        if suppressed < want_suppressed:
            failures.append(
                f"{label} suppressed {suppressed}, want >= {want_suppressed}")
        status = "FAIL" if any(f.startswith(label) for f in failures) else "ok"
        print(f"{status:4s} {fixture}: exit={rc} counts={counts} "
              f"suppressed={suppressed}")

    # The full fixture directory linted at once must also be deterministic:
    # every bad fixture fires, every good one stays quiet.
    rc, report = run_lint(".")
    total = report.get("errors", 0)
    expected_total = 0
    for (_e, counts, _s) in EXPECT.values():
        expected_total += sum(counts.values())
    if total < expected_total:
        failures.append(
            f"[corpus] whole-directory run found {total} errors, want >= "
            f"{expected_total}")
    print(f"corpus: {total} errors across the directory "
          f"(floor {expected_total})")

    if failures:
        print("\nFAILURES:")
        for f in failures:
            print("  -", f)
        return 1
    print(f"\nall {len(EXPECT)} fixture expectations met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
