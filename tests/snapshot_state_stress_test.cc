// Copyright (c) Medea reproduction authors.
// Concurrency stress tests for the epoch/snapshot cluster state and the
// batched placement service, designed to run under ThreadSanitizer (suite
// name SnapshotStateThreadTest matches the tsan preset's "ThreadTest"
// filter). Reader threads continuously acquire snapshots while a writer
// commits allocations/releases and a chaos thread forces failover
// resubmission through NodeDown/NodeUp. No reader may ever observe a torn
// epoch (epoch != epoch_check) or an internally inconsistent state, and an
// invariant auditor independently certifies every commit under the writer
// lock.
// medea-lint: allow-file(raw-sync): deliberate raw std::thread use — reader/chaos
// threads must hit the snapshot path with no extra synchronization the wrappers add.

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/epoch_state.h"
#include "src/obs/metrics.h"
#include "src/runtime/placement_service.h"
#include "src/schedulers/greedy.h"
#include "src/verify/invariant_checker.h"
#include "src/workload/lra_templates.h"

namespace medea {
namespace {

using runtime::PlacementService;
using runtime::ServiceConfig;
using runtime::ServiceMetrics;

ClusterState SmallCluster(size_t nodes = 16) {
  return ClusterBuilder().NumNodes(nodes).NumRacks(4).NumUpgradeDomains(4).NumServiceUnits(4).Build();
}

// Recomputes aggregate counters of a snapshot from its container records
// and cross-checks them against the node-side accounting. A half-published
// commit (allocation applied to the node but not the container table, or
// vice versa) fails this.
void ExpectInternallyConsistent(const ClusterState& state) {
  size_t containers = 0;
  size_t lra_containers = 0;
  Resource used;
  state.ForEachContainer([&](const ContainerInfo& info) {
    ++containers;
    if (info.long_running) {
      ++lra_containers;
    }
    used += info.resource;
  });
  ASSERT_EQ(containers, state.num_containers());
  ASSERT_EQ(lra_containers, state.num_long_running_containers());
  const Resource node_used = state.TotalUsed();
  ASSERT_EQ(used.memory_mb, node_used.memory_mb);
  ASSERT_EQ(used.vcores, node_used.vcores);
}

TEST(SnapshotStateThreadTest, CowCopyIsolatesSnapshotsFromLaterMutations) {
  ClusterState state = SmallCluster();
  const ApplicationId app(1);
  ASSERT_TRUE(state.Allocate(app, NodeId(0), Resource(1024, 1), {}, true).ok());

  const ClusterState frozen = state;  // snapshot
  const uint64_t frozen_version = frozen.version();

  // Mutations of every shard kind: nodes, containers, app index, tags.
  ASSERT_TRUE(state.Allocate(app, NodeId(1), Resource(2048, 1), {}, true).ok());
  ASSERT_TRUE(state.Allocate(ApplicationId(2), NodeId(0), Resource(512, 1), {}, false).ok());
  state.AddStaticNodeTag(NodeId(2), TagId(7));
  state.SetNodeAvailable(NodeId(3), false);
  ASSERT_TRUE(state.Release(ContainerId(0)).ok());

  // The copy still sees the original world.
  EXPECT_EQ(frozen.version(), frozen_version);
  EXPECT_EQ(frozen.num_containers(), 1u);
  EXPECT_EQ(frozen.num_long_running_containers(), 1u);
  EXPECT_NE(frozen.FindContainer(ContainerId(0)), nullptr);
  EXPECT_EQ(frozen.FindContainer(ContainerId(1)), nullptr);
  EXPECT_TRUE(frozen.node(NodeId(3)).available());
  EXPECT_FALSE(frozen.node(NodeId(2)).HasStaticTag(TagId(7)));
  EXPECT_EQ(frozen.node(NodeId(0)).used().memory_mb, 1024);
  ExpectInternallyConsistent(frozen);

  // And the original moved on.
  EXPECT_GT(state.version(), frozen_version);
  EXPECT_EQ(state.num_containers(), 2u);
  EXPECT_EQ(state.FindContainer(ContainerId(0)), nullptr);
  EXPECT_FALSE(state.node(NodeId(3)).available());
  ExpectInternallyConsistent(state);

  // Mutating the *copy* must not leak back either.
  ClusterState fork = frozen;
  ASSERT_TRUE(fork.Release(ContainerId(0)).ok());
  EXPECT_NE(frozen.FindContainer(ContainerId(0)), nullptr);
}

TEST(SnapshotStateThreadTest, ReadersNeverObserveTornEpochs) {
  EpochClusterState epoch(SmallCluster(24));

  constexpr int kReaders = 3;
  constexpr int kWriterOps = 300;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> torn{0};

  std::vector<std::thread> threads;
  // Readers: acquire, check the torn-epoch sentinel, verify the snapshot is
  // frozen and internally consistent, and that epochs advance monotonically.
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&epoch, &done, &torn] {
      uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = epoch.Acquire();
        if (snap->epoch != snap->epoch_check) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
        ASSERT_GE(snap->epoch, last_epoch);
        last_epoch = snap->epoch;
        // Concurrent copies from a shared snapshot must be race-free.
        const ClusterState copy = snap->state;
        ExpectInternallyConsistent(copy);
      }
    });
  }
  // Writer: heartbeat-style commits — allocate a few, release one, toggle a
  // node. Every commit publishes a new epoch while readers are in flight.
  threads.emplace_back([&epoch, &done] {
    std::vector<ContainerId> live;
    for (int i = 0; i < kWriterOps; ++i) {
      epoch.Commit([&](ClusterState& state) {
        const NodeId node(static_cast<uint32_t>(i % state.num_nodes()));
        if (state.node(node).available()) {
          const auto id =
              state.Allocate(ApplicationId(static_cast<uint32_t>(i % 7)), node,
                             Resource(256, 1), {}, (i % 2) == 0);
          if (id.ok()) {
            live.push_back(*id);
          }
        }
        if (live.size() > 40) {
          ASSERT_TRUE(state.Release(live.front()).ok());
          live.erase(live.begin());
        }
      });
    }
    done.store(true, std::memory_order_release);
  });
  // Failover chaos: availability flips commit through the same writer lock.
  threads.emplace_back([&epoch, &done] {
    int i = 0;
    while (!done.load(std::memory_order_acquire)) {
      const NodeId node(static_cast<uint32_t>((i++ * 5) % 24));
      epoch.Commit([&](ClusterState& state) { state.SetNodeAvailable(node, false); });
      epoch.Commit([&](ClusterState& state) { state.SetNodeAvailable(node, true); });
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GE(epoch.epoch(), static_cast<uint64_t>(kWriterOps));
  epoch.WithLive([](const ClusterState& state) {
    const auto report = verify::InvariantChecker::CheckState(state);
    EXPECT_TRUE(report.ok()) << report.ToString();
  });
}

TEST(SnapshotStateThreadTest, AcquiredSnapshotIsFrozenAcrossCommits) {
  EpochClusterState epoch(SmallCluster());
  const auto before = epoch.Acquire();
  const size_t containers_before = before->state.num_containers();
  for (int i = 0; i < 10; ++i) {
    epoch.Commit([&](ClusterState& state) {
      ASSERT_TRUE(
          state.Allocate(ApplicationId(9), NodeId(static_cast<uint32_t>(i % 16)),
                         Resource(512, 1), {}, true)
              .ok());
    });
  }
  EXPECT_EQ(before->state.num_containers(), containers_before);
  EXPECT_EQ(epoch.Acquire()->state.num_containers(), containers_before + 10);
}

TEST(SnapshotStateThreadTest, ServiceStressKeepsInvariantsUnderFailover) {
  obs::EnableMetrics(true);
  obs::MetricsRegistry::Default().Reset();

  verify::ScopedInvariantAudit audit(/*abort_on_violation=*/false);

  ServiceConfig config;
  config.max_batch = 4;
  config.admission_capacity = 8;  // small, so Submit backpressure engages
  config.num_workers = 3;
  config.plan_queue_capacity = 2;  // small, so PlanQueue backpressure engages
  config.max_attempts = 3;

  ClusterState initial = SmallCluster(32);
  ConstraintManager manager(initial.groups_ptr());
  PlacementService service(config, std::move(initial), std::move(manager));
  service.Start([] {
    SchedulerConfig scheduler_config;
    scheduler_config.node_pool_size = 32;
    scheduler_config.seed = 7;
    return std::make_unique<GreedyScheduler>(GreedyOrdering::kNodeCandidates, scheduler_config);
  });

  constexpr int kSubmitters = 3;
  constexpr int kLrasPerSubmitter = 8;
  std::atomic<int> submitted{0};
  // Operator (shared) constraints are cluster-wide: register each text once.
  // The set is only touched inside WithManager callbacks, which the service
  // serializes under its lock.
  std::set<std::string> operator_texts;

  std::vector<std::thread> threads;
  for (int s = 0; s < kSubmitters; ++s) {
    threads.emplace_back([&service, &submitted, &operator_texts, s] {
      for (int i = 0; i < kLrasPerSubmitter; ++i) {
        const ApplicationId app(static_cast<uint32_t>(1 + s * 100 + i));
        LraSpec spec;
        service.WithManager([&](ConstraintManager& m) {
          switch (i % 3) {
            case 0:
              spec = MakeHBaseInstance(app, m.tags(), /*num_workers=*/4);
              break;
            case 1:
              spec = MakeTensorFlowInstance(app, m.tags(), /*num_workers=*/3, /*num_ps=*/1);
              break;
            default:
              spec = MakeGenericLra(app, m.tags(), 3, "svc" + std::to_string(s));
              break;
          }
          for (const std::string& text : spec.shared_constraints) {
            if (operator_texts.insert(text).second) {
              ASSERT_TRUE(m.AddFromText(text, ConstraintOrigin::kOperator).ok());
            }
          }
          for (const std::string& text : spec.app_constraints) {
            ASSERT_TRUE(m.AddFromText(text, ConstraintOrigin::kApplication, app).ok());
          }
        });
        service.Submit(std::move(spec.request));
        submitted.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  // Chaos: failover resubmission hammers epoch advancement while planners
  // hold snapshots (their plans go stale and hit the revalidation path).
  threads.emplace_back([&service] {
    for (int i = 0; i < 6; ++i) {
      const NodeId node(static_cast<uint32_t>((i * 5) % 32));
      service.NodeDown(node);
      std::this_thread::sleep_for(std::chrono::milliseconds(4));
      service.NodeUp(node);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  // Snapshot readers: must never block on commits or observe torn epochs.
  threads.emplace_back([&service] {
    uint64_t last_epoch = 0;
    for (int i = 0; i < 60; ++i) {
      const auto snap = service.AcquireSnapshot();
      ASSERT_EQ(snap->epoch, snap->epoch_check);
      ASSERT_GE(snap->epoch, last_epoch);
      last_epoch = snap->epoch;
      ExpectInternallyConsistent(snap->state);
      (void)service.metrics();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (std::thread& t : threads) {
    t.join();
  }

  // Every submission (and every failover resubmission) resolves.
  ASSERT_TRUE(service.WaitIdle(std::chrono::minutes(3)));

  const ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.submitted, submitted.load(std::memory_order_relaxed));
  EXPECT_GT(metrics.batches, 0);
  // Resolution accounting closes: everything submitted plus every failover
  // request landed or was rejected.
  EXPECT_GT(metrics.lras_placed, 0);

  service.Stop();

  const std::vector<std::string> failures = audit.failures();
  EXPECT_TRUE(failures.empty()) << failures.front();
  EXPECT_GT(audit.states_audited(), 0);

  service.WithLiveState([](const ClusterState& state) {
    const auto report = verify::InvariantChecker::CheckState(state);
    EXPECT_TRUE(report.ok()) << report.ToString();
  });

  // The service reported through the shared registry.
  EXPECT_GT(
      obs::MetricsRegistry::Default().CounterNamed("service.plans_committed").value(), 0);
  EXPECT_EQ(obs::MetricsRegistry::Default().CounterNamed("service.requests").value(),
            metrics.submitted);
  obs::EnableMetrics(false);
}

TEST(SnapshotStateThreadTest, BlockingPopDrainsQueueAfterClose) {
  runtime::PlanQueue queue(/*capacity=*/2);
  ASSERT_TRUE(queue.Push(runtime::PlanEnvelope{}));
  ASSERT_TRUE(queue.Push(runtime::PlanEnvelope{}));

  std::atomic<int> popped{0};
  std::thread consumer([&] {
    runtime::PlanEnvelope envelope;
    while (queue.Pop(&envelope)) {
      popped.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Close with envelopes still queued: Pop must return both, then false.
  queue.Close();
  consumer.join();
  EXPECT_EQ(popped.load(), 2);

  // After closed-and-empty, Pop returns false immediately.
  runtime::PlanEnvelope envelope;
  EXPECT_FALSE(queue.Pop(&envelope));
}

}  // namespace
}  // namespace medea
