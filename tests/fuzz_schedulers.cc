// Copyright (c) Medea reproduction authors.
// Standalone driver for the differential scenario fuzzer (src/verify).
//
// Usage: fuzz_schedulers [--seeds N] [--base-seed S] [--no-sim] [--no-mip]
//                        [--no-decompose] [--no-cuts] [--no-lp-differential]
//                        [--no-replay] [--no-dominance] [--no-batch]
//                        [--max-failures K] [--verbose]
//
// Exits 0 iff every seed upholds every invariant; otherwise prints each
// failing seed with its violation report (reproduce a single failure with
// `fuzz_schedulers --seeds 1 --base-seed <seed>`).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/verify/scenario_fuzzer.h"

namespace {

bool ParseInt(const char* text, long long* out) {
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--base-seed S] [--no-sim] [--no-mip] [--no-decompose] "
               "[--no-cuts] [--no-lp-differential] [--no-replay] [--no-dominance] [--no-batch] "
               "[--max-failures K] [--verbose]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  medea::verify::FuzzOptions options;
  options.num_seeds = 100;
  options.max_failures = 25;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    long long value = 0;
    if (std::strcmp(arg, "--seeds") == 0 && i + 1 < argc && ParseInt(argv[++i], &value)) {
      options.num_seeds = static_cast<int>(value);
    } else if (std::strcmp(arg, "--base-seed") == 0 && i + 1 < argc &&
               ParseInt(argv[++i], &value)) {
      options.base_seed = static_cast<uint64_t>(value);
    } else if (std::strcmp(arg, "--max-failures") == 0 && i + 1 < argc &&
               ParseInt(argv[++i], &value)) {
      options.max_failures = static_cast<int>(value);
    } else if (std::strcmp(arg, "--no-sim") == 0) {
      options.run_simulation = false;
    } else if (std::strcmp(arg, "--no-mip") == 0) {
      options.check_mip = false;
    } else if (std::strcmp(arg, "--no-decompose") == 0) {
      options.check_decompose = false;
    } else if (std::strcmp(arg, "--no-cuts") == 0) {
      options.check_cuts = false;
    } else if (std::strcmp(arg, "--no-lp-differential") == 0) {
      options.check_lp_differential = false;
    } else if (std::strcmp(arg, "--no-replay") == 0) {
      options.check_replay = false;
    } else if (std::strcmp(arg, "--no-dominance") == 0) {
      options.check_dominance = false;
    } else if (std::strcmp(arg, "--no-batch") == 0) {
      options.check_batch = false;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      options.verbose = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  const medea::verify::FuzzResult result = medea::verify::FuzzSchedulers(options);
  std::printf("%s\n", result.Summary().c_str());
  if (!result.ok()) {
    for (const auto& failure : result.failures) {
      std::fprintf(stderr, "FAIL %s\n", failure.ToString().c_str());
    }
    std::fprintf(stderr, "fuzz_schedulers: %zu invariant violation(s)\n",
                 result.failures.size());
    return 1;
  }
  std::printf("fuzz_schedulers: all invariants held\n");
  return 0;
}
