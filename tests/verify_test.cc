// Copyright (c) Medea reproduction authors.
// Unit tests for the verification layer (src/verify): the InvariantChecker
// must reject deliberately corrupted placements with precise reports, accept
// clean ones, and the solver self-certifier must catch tampered solutions.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/schedulers/greedy.h"
#include "src/solver/mip.h"
#include "src/verify/invariant_checker.h"
#include "src/verify/self_certify.h"
#include "src/workload/lra_templates.h"

namespace medea::verify {
namespace {

bool HasKind(const InvariantReport& report, InvariantKind kind) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [kind](const InvariantViolation& v) { return v.kind == kind; });
}

class InvariantCheckerTest : public ::testing::Test {
 protected:
  InvariantCheckerTest()
      : state_(ClusterBuilder()
                   .NumNodes(4)
                   .NumRacks(2)
                   .NumUpgradeDomains(2)
                   .NumServiceUnits(2)
                   .NodeCapacity(Resource(8 * 1024, 4))
                   .Build()),
        manager_(state_.groups_ptr()) {}

  // A two-container generic LRA problem over the test cluster.
  PlacementProblem MakeProblem(ApplicationId app, int containers,
                               Resource demand = kSmallDemand) {
    LraSpec spec = MakeGenericLra(app, manager_.tags(), containers, "svc", demand);
    PlacementProblem problem;
    problem.lras = {spec.request};
    problem.state = &state_;
    problem.manager = &manager_;
    return problem;
  }

  static PlacementPlan FullPlan(const PlacementProblem& /*problem*/,
                                const std::vector<uint32_t>& nodes) {
    PlacementPlan plan;
    plan.lra_placed = {true};
    for (size_t c = 0; c < nodes.size(); ++c) {
      Assignment a;
      a.lra_index = 0;
      a.container_index = static_cast<int>(c);
      a.node = NodeId(nodes[c]);
      plan.assignments.push_back(a);
    }
    return plan;
  }

  ClusterState state_;
  ConstraintManager manager_;
};

TEST_F(InvariantCheckerTest, CleanPlanPasses) {
  const PlacementProblem problem = MakeProblem(ApplicationId(0), 2);
  const InvariantReport report =
      InvariantChecker::CheckPlan(problem, FullPlan(problem, {0, 1}));
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.objective, 0.0);  // full placement, no violations
}

TEST_F(InvariantCheckerTest, RejectsCapacityOverflow) {
  // One container demanding more memory than a node holds.
  const PlacementProblem problem =
      MakeProblem(ApplicationId(0), 1, Resource(9 * 1024, 1));
  const InvariantReport report = InvariantChecker::CheckPlan(problem, FullPlan(problem, {0}));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasKind(report, InvariantKind::kCapacityExceeded)) << report.ToString();
}

TEST_F(InvariantCheckerTest, RejectsAggregateOverflowAcrossContainers) {
  // Each container fits alone; both on one node exceed its 4 vcores.
  const PlacementProblem problem = MakeProblem(ApplicationId(0), 2, Resource(1024, 3));
  const InvariantReport report = InvariantChecker::CheckPlan(problem, FullPlan(problem, {2, 2}));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasKind(report, InvariantKind::kCapacityExceeded)) << report.ToString();
}

TEST_F(InvariantCheckerTest, RejectsUnavailableNode) {
  state_.SetNodeAvailable(NodeId(1), false);
  const PlacementProblem problem = MakeProblem(ApplicationId(0), 1);
  const InvariantReport report = InvariantChecker::CheckPlan(problem, FullPlan(problem, {1}));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasKind(report, InvariantKind::kUnavailableNode)) << report.ToString();
  EXPECT_EQ(report.violations[0].node, NodeId(1));
}

TEST_F(InvariantCheckerTest, RejectsDuplicateAssignment) {
  const PlacementProblem problem = MakeProblem(ApplicationId(0), 2);
  PlacementPlan plan = FullPlan(problem, {0, 1});
  plan.assignments.push_back(plan.assignments[0]);  // container 0 assigned twice
  const InvariantReport report = InvariantChecker::CheckPlan(problem, plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasKind(report, InvariantKind::kDuplicateAssignment)) << report.ToString();
}

TEST_F(InvariantCheckerTest, RejectsPartialPlacement) {
  // Placed LRA with only one of two containers assigned violates Eq. 4.
  const PlacementProblem problem = MakeProblem(ApplicationId(0), 2);
  PlacementPlan plan = FullPlan(problem, {0, 1});
  plan.assignments.pop_back();
  const InvariantReport report = InvariantChecker::CheckPlan(problem, plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasKind(report, InvariantKind::kPartialPlacement)) << report.ToString();
  const auto& v = report.violations[0];
  EXPECT_EQ(v.lra_index, 0);
  EXPECT_EQ(v.container_index, 1);
}

TEST_F(InvariantCheckerTest, RejectsUnplannedAssignment) {
  const PlacementProblem problem = MakeProblem(ApplicationId(0), 1);
  PlacementPlan plan = FullPlan(problem, {0});
  plan.lra_placed = {false};  // assignments for an LRA marked unplaced
  const InvariantReport report = InvariantChecker::CheckPlan(problem, plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasKind(report, InvariantKind::kUnplannedAssignment)) << report.ToString();
}

TEST_F(InvariantCheckerTest, RejectsBadIndicesAndInvalidNodes) {
  const PlacementProblem problem = MakeProblem(ApplicationId(0), 1);
  PlacementPlan plan;
  plan.lra_placed = {true};
  Assignment bad_lra;
  bad_lra.lra_index = 7;
  bad_lra.container_index = 0;
  bad_lra.node = NodeId(0);
  Assignment bad_node;
  bad_node.lra_index = 0;
  bad_node.container_index = 0;
  bad_node.node = NodeId(99);
  plan.assignments = {bad_lra, bad_node};
  const InvariantReport report = InvariantChecker::CheckPlan(problem, plan);
  EXPECT_TRUE(HasKind(report, InvariantKind::kBadIndex)) << report.ToString();
  EXPECT_TRUE(HasKind(report, InvariantKind::kInvalidNode)) << report.ToString();
}

TEST_F(InvariantCheckerTest, CommittedStatePassesStateAudit) {
  const PlacementProblem problem = MakeProblem(ApplicationId(0), 2);
  ASSERT_TRUE(CommitPlan(problem, FullPlan(problem, {0, 3}), state_));
  const InvariantReport report = InvariantChecker::CheckState(state_, &manager_);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(InvariantCheckerTest, DifferentialSoftEvaluationAgreesOnViolations) {
  // Anti-affinity between two svc containers, then place them together: both
  // the shared evaluator and the independent one must report the violation.
  ASSERT_TRUE(manager_.AddFromText("{svc, {svc, 0, 0}, node}", ConstraintOrigin::kOperator).ok());
  const PlacementProblem problem = MakeProblem(ApplicationId(0), 2);
  const InvariantReport report =
      InvariantChecker::CheckPlan(problem, FullPlan(problem, {2, 2}));
  // No kConstraintMismatch: the implementations agree; and they agree on a
  // real violation, not on zero.
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.soft.subjects, 2);
  EXPECT_EQ(report.soft.violated, 2);
  EXPECT_GT(report.soft.weighted_extent, 0.0);
}

TEST_F(InvariantCheckerTest, PlanObjectivePrefersPlacement) {
  const PlacementProblem problem = MakeProblem(ApplicationId(0), 2);
  const double placed = InvariantChecker::PlanObjective(problem, FullPlan(problem, {0, 1}));
  PlacementPlan empty;
  empty.lra_placed = {false};
  const double unplaced = InvariantChecker::PlanObjective(problem, empty);
  EXPECT_GT(placed, unplaced);
}

TEST_F(InvariantCheckerTest, ScopedAuditObservesSchedulerPlans) {
  const PlacementProblem problem = MakeProblem(ApplicationId(0), 2);
  ScopedInvariantAudit audit(/*abort_on_violation=*/false);
  GreedyScheduler serial(GreedyOrdering::kSerial, SchedulerConfig{});
  (void)serial.Place(problem);
  EXPECT_GE(audit.plans_audited(), 1);
  EXPECT_TRUE(audit.failures().empty());
  // A corrupted plan routed through the hook is collected, not fatal.
  PlacementPlan bad = FullPlan(problem, {0, 1});
  bad.assignments.pop_back();
  AuditPlan(problem, bad, "corrupted");
  EXPECT_EQ(audit.failures().size(), 1u);
}

TEST_F(InvariantCheckerTest, ScopedAuditRestoresPreviousAuditor) {
  EXPECT_EQ(GetPlacementAuditor(), nullptr);
  {
    ScopedInvariantAudit outer(false);
    EXPECT_EQ(GetPlacementAuditor(), &outer);
    {
      ScopedInvariantAudit inner(false);
      EXPECT_EQ(GetPlacementAuditor(), &inner);
    }
    EXPECT_EQ(GetPlacementAuditor(), &outer);
  }
  EXPECT_EQ(GetPlacementAuditor(), nullptr);
}

// --- Solver self-certification ----------------------------------------------

class SelfCertifyTest : public ::testing::Test {
 protected:
  SelfCertifyTest() {
    // max x + y s.t. x + y <= 1, x,y binary — optimum 1.
    model_.SetMaximize(true);
    model_.AddBinary(1.0, "x");
    model_.AddBinary(1.0, "y");
    model_.AddRow({{0, 1.0}, {1, 1.0}}, solver::RowSense::kLessEqual, 1.0, "pick_one");
    solution_ = solver::SolveMip(model_, solver::MipOptions{}, &stats_);
  }

  solver::Model model_;
  solver::MipStats stats_;
  solver::Solution solution_;
};

TEST_F(SelfCertifyTest, CertifiesHonestSolution) {
  ASSERT_TRUE(solution_.HasSolution());
  const CertifyReport report = CertifySolution(model_, solution_, &stats_);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_NEAR(report.recomputed_objective, 1.0, 1e-6);
  EXPECT_TRUE(stats_.has_best_bound);
}

TEST_F(SelfCertifyTest, CatchesRowViolation) {
  solver::Solution tampered = solution_;
  tampered.values = {1.0, 1.0};  // violates x + y <= 1
  tampered.objective = 2.0;
  const CertifyReport report = CertifySolution(model_, tampered);
  EXPECT_FALSE(report.ok());
}

TEST_F(SelfCertifyTest, CatchesFractionalInteger) {
  solver::Solution tampered = solution_;
  tampered.values = {0.5, 0.0};
  tampered.objective = 0.5;
  const CertifyReport report = CertifySolution(model_, tampered);
  EXPECT_FALSE(report.ok());
}

TEST_F(SelfCertifyTest, CatchesObjectiveMismatch) {
  solver::Solution tampered = solution_;
  tampered.objective += 0.25;
  const CertifyReport report = CertifySolution(model_, tampered);
  EXPECT_FALSE(report.ok());
}

TEST_F(SelfCertifyTest, CatchesBoundInconsistency) {
  ASSERT_TRUE(solution_.HasSolution());
  solver::MipStats fake = stats_;
  fake.has_best_bound = true;
  fake.best_bound = 0.5;  // claims no solution can exceed 0.5; incumbent is 1
  const CertifyReport report = CertifySolution(model_, solution_, &fake);
  EXPECT_FALSE(report.ok());
}

TEST_F(SelfCertifyTest, CatchesOptimalFarFromBound) {
  solver::Solution weak = solution_;
  weak.status = solver::SolveStatus::kOptimal;
  weak.values = {0.0, 0.0};
  weak.objective = 0.0;
  solver::MipStats fake = stats_;
  fake.has_best_bound = true;
  fake.best_bound = 1.0;  // a 0.0 "optimal" incumbent under a bound of 1.0
  const CertifyReport report = CertifySolution(model_, weak, &fake);
  EXPECT_FALSE(report.ok());
}

TEST_F(SelfCertifyTest, InfeasibleStatusCertifiesTrivially) {
  solver::Solution none;
  none.status = solver::SolveStatus::kInfeasible;
  const CertifyReport report = CertifySolution(model_, none);
  EXPECT_TRUE(report.ok());
}

}  // namespace
}  // namespace medea::verify
