// Copyright (c) Medea reproduction authors.
// Parallel branch and bound (MipOptions::num_threads): at every thread
// count, an exact (zero-gap, unlimited-budget) search must certify the same
// objective as the serial search — the tree SHAPE may differ (incumbent
// timing is scheduling-dependent), the proven optimum may not. Also covers
// the parallel engine's edge cases: infeasible models, root-integral
// models, budget cutoffs and the per-worker statistics contract.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "src/solver/mip.h"
#include "src/solver/model.h"
#include "src/solver/testing/placement_model.h"
#include "src/verify/self_certify.h"

namespace medea::solver {
namespace {

MipOptions ExactOptions(int threads) {
  MipOptions options;
  options.time_limit_seconds = 0.0;  // run to completion
  options.relative_gap = 0.0;
  options.absolute_gap = 1e-9;
  options.certify = true;  // abort on an infeasible incumbent
  options.num_threads = threads;
  return options;
}

TEST(ParallelSolverTest, AllThreadCountsCertifyTheSerialObjective) {
  for (const auto& [containers, nodes] : testing::MicroBenchSizes()) {
    for (const uint64_t seed : testing::MicroBenchSeeds()) {
      const Model m = testing::PlacementModel(containers, nodes, seed);
      const std::string label = std::to_string(containers) + "x" +
                                std::to_string(nodes) + " seed " +
                                std::to_string(seed);

      MipStats serial_stats;
      const Solution serial = SolveMip(m, ExactOptions(1), &serial_stats);
      ASSERT_EQ(serial.status, SolveStatus::kOptimal) << label;

      for (const int threads : {2, 4}) {
        MipStats stats;
        const Solution parallel = SolveMip(m, ExactOptions(threads), &stats);
        ASSERT_EQ(parallel.status, SolveStatus::kOptimal)
            << label << " threads " << threads;
        EXPECT_NEAR(parallel.objective, serial.objective, 1e-6)
            << label << " threads " << threads;
        // Independent re-verification: feasibility, integrality, recomputed
        // objective and incumbent-vs-dual-bound consistency.
        verify::CertifyOptions certify_options;
        certify_options.absolute_gap = 1e-9;
        certify_options.relative_gap = 0.0;
        const verify::CertifyReport report =
            verify::CertifySolution(m, parallel, &stats, certify_options);
        EXPECT_TRUE(report.ok())
            << label << " threads " << threads << ": " << report.ToString();

        // Per-worker statistics contract: one entry per worker, and the
        // breakdown must sum to the headline counters.
        EXPECT_EQ(stats.threads_used, threads) << label;
        ASSERT_EQ(static_cast<int>(stats.per_worker.size()), threads) << label;
        long long worker_nodes = 0;
        long long worker_pivots = 0;
        long long worker_steals = 0;
        for (const MipStats::WorkerStats& w : stats.per_worker) {
          worker_nodes += w.nodes_explored;
          worker_pivots += w.total_pivots;
          worker_steals += w.steals;
        }
        EXPECT_EQ(worker_nodes, stats.nodes_explored) << label;
        EXPECT_EQ(worker_steals, stats.steals) << label;
        EXPECT_FALSE(stats.hit_time_limit) << label;
        EXPECT_FALSE(stats.hit_node_limit) << label;
      }
    }
  }
}

TEST(ParallelSolverTest, InfeasibleModelIsProvenInfeasibleInParallel) {
  Model m;
  const VarIndex x = m.AddBinary(1.0, "x");
  const VarIndex y = m.AddBinary(1.0, "y");
  m.AddRow({{x, 1.0}, {y, 1.0}}, RowSense::kGreaterEqual, 3.0);  // max 2
  m.SetMaximize(true);
  MipOptions options = ExactOptions(4);
  options.presolve = false;  // make branch and bound prove it, not presolve
  const Solution solution = SolveMip(m, options);
  EXPECT_EQ(solution.status, SolveStatus::kInfeasible);
  EXPECT_FALSE(solution.HasSolution());
}

TEST(ParallelSolverTest, RootIntegralModelSolvesWithoutBranching) {
  // LP relaxation is integral at the root: the parallel search must settle
  // it in a single node without deadlocking on an empty frontier.
  Model m;
  const VarIndex x = m.AddBinary(2.0, "x");
  m.AddBinary(1.0, "y");  // unconstrained binary: integral at the root
  m.AddRow({{x, 1.0}}, RowSense::kLessEqual, 1.0);
  m.SetMaximize(true);
  MipStats stats;
  const Solution solution = SolveMip(m, ExactOptions(4), &stats);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 3.0, 1e-9);
}

TEST(ParallelSolverTest, NodeLimitLatchesExactlyOnceAcrossWorkers) {
  const Model m = testing::PlacementModel(16, 8, 11);
  MipOptions options = ExactOptions(4);
  options.certify = false;  // a cutoff incumbent need not be optimal
  // Root cuts shrink this search to a couple of nodes; disable them so the
  // frontier is deep enough for every worker to race the 8-node budget.
  options.cuts.enable = false;
  options.max_nodes = 8;
  MipStats stats;
  const Solution solution = SolveMip(m, options, &stats);
  EXPECT_TRUE(stats.hit_node_limit);
  EXPECT_FALSE(stats.hit_time_limit);
  // An interrupted search never claims optimality.
  EXPECT_NE(solution.status, SolveStatus::kOptimal);
}

TEST(ParallelSolverTest, TimeLimitProducesAnytimeBehaviour) {
  const Model m = testing::PlacementModel(20, 10, 11);
  MipOptions options = ExactOptions(4);
  options.certify = false;
  options.time_limit_seconds = 0.05;
  MipStats stats;
  const Solution solution = SolveMip(m, options, &stats);
  // Either the tiny budget was enough (optimal) or the search was cut off —
  // evidenced by the latched deadline flag or by node LPs clipped to their
  // fair share of the dwindling budget (docs/solver.md "Time limits") — and
  // any returned incumbent must still be feasible.
  if (solution.status != SolveStatus::kOptimal) {
    EXPECT_TRUE(stats.hit_time_limit || stats.lp_failures > 0);
  }
  if (solution.HasSolution()) {
    EXPECT_TRUE(m.IsFeasible(solution.values, 1e-5));
  }
}

TEST(ParallelSolverTest, OversizedThreadCountIsClamped) {
  const Model m = testing::PlacementModel(10, 5, 3);
  MipOptions options = ExactOptions(1000);
  MipStats stats;
  const Solution solution = SolveMip(m, options, &stats);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_LE(stats.threads_used, 64);
  EXPECT_GT(stats.threads_used, 1);
}

}  // namespace
}  // namespace medea::solver
