// Tests for the discrete-event simulator (two-scheduler pipeline, event
// ordering, resubmission, metrics) and the unavailability-trace generator.

#include <gtest/gtest.h>

#include <memory>

#include "src/schedulers/greedy.h"
#include "src/schedulers/ilp_scheduler.h"
#include "src/sim/simulation.h"
#include "src/sim/unavailability.h"
#include "src/verify/invariant_checker.h"

namespace medea {
namespace {

SimConfig SmallSimConfig() {
  SimConfig config;
  config.num_nodes = 20;
  config.num_racks = 4;
  config.num_upgrade_domains = 4;
  config.num_service_units = 4;
  config.lra_interval_ms = 10000;
  return config;
}

std::unique_ptr<LraScheduler> SmallIlp() {
  SchedulerConfig sc;
  sc.node_pool_size = 20;
  sc.candidates_per_container = 12;
  sc.ilp_time_limit_seconds = 3.0;
  return std::make_unique<MedeaIlpScheduler>(sc);
}

TEST(SimulationTest, LraPlacedAtNextInterval) {
  Simulation sim(SmallSimConfig(), SmallIlp());
  auto spec = MakeGenericLra(ApplicationId(1), sim.manager().tags(), 4, "svc");
  sim.SubmitLraAt(2000, std::move(spec));
  sim.RunUntil(9999);
  EXPECT_FALSE(sim.IsPlaced(ApplicationId(1)));  // interval not reached
  sim.RunUntil(10000);
  EXPECT_TRUE(sim.IsPlaced(ApplicationId(1)));
  EXPECT_EQ(sim.metrics().lras_placed, 1);
  EXPECT_EQ(sim.metrics().cycles, 1);
  // Placement latency = 10000 - 2000.
  EXPECT_DOUBLE_EQ(sim.metrics().lra_placement_latency_ms.Mean(), 8000.0);
}

TEST(SimulationTest, BatchingWithinInterval) {
  Simulation sim(SmallSimConfig(), SmallIlp());
  for (uint32_t i = 1; i <= 3; ++i) {
    sim.SubmitLraAt(1000 * i, MakeGenericLra(ApplicationId(i), sim.manager().tags(), 2, "svc"));
  }
  sim.RunUntil(10000);
  // All three LRAs considered in one cycle.
  EXPECT_EQ(sim.metrics().cycles, 1);
  EXPECT_EQ(sim.metrics().lras_placed, 3);
}

TEST(SimulationTest, PeriodicityCapSplitsCycles) {
  SimConfig config = SmallSimConfig();
  config.max_lras_per_cycle = 1;
  Simulation sim(config, SmallIlp());
  for (uint32_t i = 1; i <= 3; ++i) {
    sim.SubmitLraAt(100, MakeGenericLra(ApplicationId(i), sim.manager().tags(), 2, "svc"));
  }
  sim.RunUntilQuiescent();
  EXPECT_EQ(sim.metrics().lras_placed, 3);
  EXPECT_EQ(sim.metrics().cycles, 3);
}

TEST(SimulationTest, AppConstraintsRegisteredOnSubmission) {
  Simulation sim(SmallSimConfig(), SmallIlp());
  auto spec = MakeHBaseInstance(ApplicationId(1), sim.manager().tags(), 4);
  sim.SubmitLraAt(0, std::move(spec));
  sim.RunUntil(10000);
  // 3 app constraints + 1 shared operator constraint.
  EXPECT_EQ(sim.manager().size(), 4u);
  EXPECT_TRUE(sim.IsPlaced(ApplicationId(1)));
  const auto report = sim.EvaluateViolations();
  EXPECT_EQ(report.violated_subjects, 0);
}

TEST(SimulationTest, SharedConstraintDeduplicated) {
  Simulation sim(SmallSimConfig(), SmallIlp());
  sim.SubmitLraAt(0, MakeHBaseInstance(ApplicationId(1), sim.manager().tags(), 2));
  sim.SubmitLraAt(0, MakeHBaseInstance(ApplicationId(2), sim.manager().tags(), 2));
  sim.RunUntil(10000);
  // 3 + 3 app constraints + 1 shared (deduplicated).
  EXPECT_EQ(sim.manager().size(), 7u);
}

TEST(SimulationTest, OversizedLraRejectedAfterRetries) {
  SimConfig config = SmallSimConfig();
  config.max_lra_attempts = 2;
  Simulation sim(config, SmallIlp());
  // 25 containers of 16 GB cannot fit on 20 x 16 GB nodes along with their
  // own count; a single container demands the full node.
  sim.SubmitLraAt(0, MakeGenericLra(ApplicationId(1), sim.manager().tags(), 25, "big",
                                    Resource(16 * 1024, 8)));
  sim.RunUntilQuiescent();
  EXPECT_FALSE(sim.IsPlaced(ApplicationId(1)));
  EXPECT_EQ(sim.metrics().lras_rejected, 1);
  EXPECT_EQ(sim.metrics().lra_resubmissions, 1);  // attempt 1 failed, retried once
}

TEST(SimulationTest, TaskJobsFlowThroughTaskScheduler) {
  Simulation sim(SmallSimConfig(), SmallIlp());
  std::vector<TaskRequest> tasks(8, TaskRequest{Resource(1024, 1), 5000});
  sim.SubmitTaskJobAt(500, tasks);
  sim.RunUntil(1000);  // heartbeat at 1000 allocates
  EXPECT_EQ(sim.state().num_containers(), 8u);
  sim.RunUntil(7000);  // tasks complete at 6000
  EXPECT_EQ(sim.state().num_containers(), 0u);
  EXPECT_EQ(sim.task_scheduler().allocation_latency_ms().Count(), 8u);
}

TEST(SimulationTest, RemoveLraFreesContainersAndConstraints) {
  Simulation sim(SmallSimConfig(), SmallIlp());
  sim.SubmitLraAt(0, MakeHBaseInstance(ApplicationId(1), sim.manager().tags(), 4));
  sim.RunUntil(10000);
  ASSERT_TRUE(sim.IsPlaced(ApplicationId(1)));
  sim.RemoveLraAt(20000, ApplicationId(1));
  sim.RunUntil(20000);
  EXPECT_FALSE(sim.IsPlaced(ApplicationId(1)));
  EXPECT_EQ(sim.manager().size(), 1u);  // only the shared operator constraint remains
}

TEST(SimulationTest, LraAndTasksCoexist) {
  Simulation sim(SmallSimConfig(), SmallIlp());
  std::vector<TaskRequest> tasks(20, TaskRequest{Resource(2048, 1), 60000});
  sim.SubmitTaskJobAt(0, tasks);
  sim.SubmitLraAt(500, MakeGenericLra(ApplicationId(1), sim.manager().tags(), 4, "svc"));
  sim.RunUntil(30000);
  EXPECT_TRUE(sim.IsPlaced(ApplicationId(1)));
  EXPECT_GT(sim.MemoryUtilization(), 0.0);
}

TEST(SimulationTest, GreedySchedulerWorksInSim) {
  SchedulerConfig sc;
  sc.node_pool_size = 20;
  Simulation sim(SmallSimConfig(),
                 std::make_unique<GreedyScheduler>(GreedyOrdering::kNodeCandidates, sc));
  sim.SubmitLraAt(0, MakeHBaseInstance(ApplicationId(1), sim.manager().tags(), 4));
  sim.RunUntil(10000);
  EXPECT_TRUE(sim.IsPlaced(ApplicationId(1)));
}

TEST(SimulationTest, MetricsLatencyRecorded) {
  Simulation sim(SmallSimConfig(), SmallIlp());
  sim.SubmitLraAt(0, MakeGenericLra(ApplicationId(1), sim.manager().tags(), 2, "svc"));
  sim.RunUntil(10000);
  EXPECT_EQ(sim.metrics().lra_cycle_latency_ms.Count(), 1u);
  EXPECT_GE(sim.metrics().lra_cycle_latency_ms.Mean(), 0.0);
}

TEST(SimulationTest, NodeFailureResubmitsLostLraContainers) {
  Simulation sim(SmallSimConfig(), SmallIlp());
  sim.SubmitLraAt(0, MakeGenericLra(ApplicationId(1), sim.manager().tags(), 4, "svc"));
  sim.RunUntil(10000);
  ASSERT_TRUE(sim.IsPlaced(ApplicationId(1)));
  // Fail the node hosting the first container.
  const auto containers = sim.state().ContainersOf(ApplicationId(1));
  const NodeId victim = sim.state().FindContainer(containers[0])->node;
  size_t on_victim = 0;
  for (ContainerId c : containers) {
    on_victim += sim.state().FindContainer(c)->node == victim ? 1 : 0;
  }
  sim.NodeDownAt(15000, victim);
  sim.RunUntilQuiescent();
  EXPECT_EQ(sim.metrics().lra_containers_lost, static_cast<int>(on_victim));
  EXPECT_EQ(sim.metrics().failover_replacements, 1);
  EXPECT_EQ(sim.metrics().lras_placed, 1);  // replacements are not new LRAs
  // All four containers are running again, none on the dead node.
  EXPECT_EQ(sim.state().ContainersOf(ApplicationId(1)).size(), 4u);
  for (ContainerId c : sim.state().ContainersOf(ApplicationId(1))) {
    EXPECT_NE(sim.state().FindContainer(c)->node, victim);
  }
}

TEST(SimulationTest, NodeFailureRequeuesTasks) {
  Simulation sim(SmallSimConfig(), SmallIlp());
  std::vector<TaskRequest> tasks(3, TaskRequest{Resource(2048, 1), 600000});
  sim.SubmitTaskJobAt(0, tasks);
  sim.RunUntil(2000);
  ASSERT_EQ(sim.task_scheduler().running_tasks(), 3u);
  // Find a node with a task and fail it.
  NodeId victim = NodeId::Invalid();
  sim.state().ForEachContainer([&](const ContainerInfo& info) { victim = info.node; });
  ASSERT_TRUE(victim.IsValid());
  sim.NodeDownAt(3000, victim);
  sim.RunUntil(5000);
  EXPECT_GE(sim.metrics().tasks_requeued_on_failure, 1);
  // The task reruns elsewhere; total running+pending is conserved.
  EXPECT_EQ(sim.task_scheduler().running_tasks() + sim.task_scheduler().pending_tasks(), 3u);
}

TEST(SimulationTest, NodeRecoveryAcceptsPlacementsAgain) {
  SimConfig config = SmallSimConfig();
  config.num_nodes = 2;
  config.num_racks = 1;
  config.num_upgrade_domains = 1;
  config.num_service_units = 1;
  Simulation sim(config, SmallIlp());
  sim.NodeDownAt(100, NodeId(0));
  sim.NodeDownAt(100, NodeId(1));
  std::vector<TaskRequest> tasks(1, TaskRequest{Resource(1024, 1), 5000});
  sim.SubmitTaskJobAt(200, tasks);
  sim.RunUntil(3000);
  EXPECT_EQ(sim.task_scheduler().running_tasks(), 0u);  // nowhere to run
  sim.NodeUpAt(4000, NodeId(0));
  sim.RunUntil(6000);
  EXPECT_EQ(sim.task_scheduler().pending_tasks(), 0u);  // allocated after recovery
}

TEST(SimulationTest, NodeFailureFailoverIsInvariantClean) {
  // A node failure mid-run forces container loss, failover resubmission and
  // task requeueing. Every plan and every state mutation along the way must
  // pass the independent invariant checker.
  Simulation sim(SmallSimConfig(), SmallIlp());
  sim.SubmitLraAt(0, MakeGenericLra(ApplicationId(1), sim.manager().tags(), 4, "svc"));
  std::vector<TaskRequest> tasks(3, TaskRequest{Resource(2048, 1), 30000});
  sim.SubmitTaskJobAt(0, tasks);

  verify::ScopedInvariantAudit audit(/*abort_on_violation=*/false);
  sim.RunUntil(12000);
  ASSERT_TRUE(sim.IsPlaced(ApplicationId(1)));
  const auto containers = sim.state().ContainersOf(ApplicationId(1));
  const NodeId victim = sim.state().FindContainer(containers[0])->node;
  sim.NodeDownAt(15000, victim);
  sim.RunUntil(22000);
  // While the node is down: accounting still consistent, nothing placed on it.
  EXPECT_TRUE(verify::InvariantChecker::CheckState(sim.state(), &sim.manager()).ok());
  for (ContainerId c : sim.state().ContainersOf(ApplicationId(1))) {
    EXPECT_NE(sim.state().FindContainer(c)->node, victim);
  }
  sim.NodeUpAt(25000, victim);
  sim.RunUntilQuiescent();

  EXPECT_GT(audit.plans_audited(), 0);
  EXPECT_GT(audit.states_audited(), 0);
  EXPECT_TRUE(audit.failures().empty())
      << "first audit failure:\n"
      << (audit.failures().empty() ? "" : audit.failures().front());
  const verify::InvariantReport final_report =
      verify::InvariantChecker::CheckState(sim.state(), &sim.manager());
  EXPECT_TRUE(final_report.ok()) << final_report.ToString();
  EXPECT_EQ(sim.state().ContainersOf(ApplicationId(1)).size(), 4u);
}

TEST(SimulationTest, MetricsSamplingAndCsvExport) {
  SimConfig config = SmallSimConfig();
  config.metrics_sample_interval_ms = 5000;
  Simulation sim(config, SmallIlp());
  sim.SubmitLraAt(0, MakeGenericLra(ApplicationId(1), sim.manager().tags(), 4, "svc"));
  std::vector<TaskRequest> tasks(4, TaskRequest{Resource(1024, 1), 20000});
  sim.SubmitTaskJobAt(0, tasks);
  sim.RunUntil(30000);
  ASSERT_GE(sim.samples().size(), 3u);
  // Samples are chronological and consistent.
  for (size_t i = 0; i < sim.samples().size(); ++i) {
    const MetricsSample& s = sim.samples()[i];
    if (i > 0) {
      EXPECT_GT(s.time_ms, sim.samples()[i - 1].time_ms);
    }
    EXPECT_GE(s.memory_utilization, 0.0);
    EXPECT_LE(s.memory_utilization, 1.0);
  }
  // The post-placement samples must show LRA containers.
  EXPECT_EQ(sim.samples().back().lra_containers, 4u);
  // CSV round-trip.
  const std::string path = ::testing::TempDir() + "/medea_samples.csv";
  ASSERT_TRUE(sim.WriteSamplesCsv(path).ok());
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof(line), file), nullptr);
  EXPECT_EQ(std::string(line).rfind("time_ms,", 0), 0u);
  int rows = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    ++rows;
  }
  std::fclose(file);
  EXPECT_EQ(static_cast<size_t>(rows), sim.samples().size());
}

TEST(SimulationTest, SamplerDoesNotPreventQuiescence) {
  SimConfig config = SmallSimConfig();
  config.metrics_sample_interval_ms = 1000;
  Simulation sim(config, SmallIlp());
  sim.SubmitLraAt(0, MakeGenericLra(ApplicationId(1), sim.manager().tags(), 2, "svc"));
  sim.RunUntilQuiescent();  // must terminate promptly, not at max_t
  EXPECT_LT(sim.now(), 60000);
  EXPECT_TRUE(sim.IsPlaced(ApplicationId(1)));
}

// ---- Conflict policies (§5.4) --------------------------------------------------

// A scheduler that always plans onto node 0 — guaranteeing a commit
// conflict when node 0 is full.
class PinnedToNodeZero : public LraScheduler {
 public:
  PlacementPlan Place(const PlacementProblem& problem) override {
    PlacementPlan plan;
    plan.lra_placed.assign(problem.lras.size(), true);
    for (size_t i = 0; i < problem.lras.size(); ++i) {
      for (size_t j = 0; j < problem.lras[i].containers.size(); ++j) {
        plan.assignments.push_back({static_cast<int>(i), static_cast<int>(j), NodeId(0)});
      }
    }
    return plan;
  }
  std::string name() const override { return "pinned0"; }
};

TEST(ConflictPolicyTest, KillTasksEvictsAndPlaces) {
  SimConfig config = SmallSimConfig();
  config.conflict_policy = ConflictPolicy::kKillTasks;
  config.max_lra_attempts = 1;  // no second chance: eviction must work
  Simulation sim(config, std::make_unique<PinnedToNodeZero>());
  // Node 0 is filled by long-lived tasks (least-loaded fill puts exactly one
  // full-node task there).
  std::vector<TaskRequest> tasks(20, TaskRequest{Resource(16 * 1024, 8), 3600000});
  sim.SubmitTaskJobAt(0, tasks);
  sim.RunUntil(2000);
  ASSERT_GT(sim.state().node(NodeId(0)).used().memory_mb, 0);
  sim.SubmitLraAt(3000, MakeGenericLra(ApplicationId(1), sim.manager().tags(), 2, "svc",
                                       Resource(4096, 2)));
  sim.RunUntil(20000);
  EXPECT_TRUE(sim.IsPlaced(ApplicationId(1)));
  EXPECT_GE(sim.metrics().tasks_killed, 1);
  EXPECT_EQ(sim.metrics().commit_conflicts, 1);
  // The killed task went back to the queue (it may or may not have been
  // reallocated elsewhere by now, but it must not be lost).
  EXPECT_EQ(sim.task_scheduler().pending_tasks() + sim.task_scheduler().running_tasks(),
            20u);
}

TEST(ConflictPolicyTest, ReserveHoldsCapacityForLra) {
  SimConfig config = SmallSimConfig();
  config.conflict_policy = ConflictPolicy::kReserve;
  config.max_lra_attempts = 10;
  Simulation sim(config, std::make_unique<PinnedToNodeZero>());
  // Node 0 full with a task that finishes at t=25s; a steady task stream
  // would normally snap up the freed space.
  sim.SubmitTaskJobAt(0, {TaskRequest{Resource(16 * 1024, 8), 24000}});
  sim.RunUntil(2000);
  sim.SubmitLraAt(3000, MakeGenericLra(ApplicationId(1), sim.manager().tags(), 2, "svc",
                                       Resource(4096, 2)));
  sim.RunUntil(9999);
  // First cycle conflicts and reserves.
  EXPECT_GE(sim.metrics().reservations_made, 0);
  sim.RunUntil(10000);
  EXPECT_GE(sim.metrics().commit_conflicts, 1);
  EXPECT_GE(sim.metrics().reservations_made, 1);
  // Competing tasks arrive while the reservation holds node 0.
  std::vector<TaskRequest> competitors(8, TaskRequest{Resource(4096, 2), 3600000});
  sim.SubmitTaskJobAt(20000, competitors);
  sim.RunUntil(60000);
  EXPECT_TRUE(sim.IsPlaced(ApplicationId(1)));
  // The LRA's containers must be on node 0 (the reserved node).
  for (ContainerId c : sim.state().ContainersOf(ApplicationId(1))) {
    EXPECT_EQ(sim.state().FindContainer(c)->node, NodeId(0));
  }
}

TEST(ConflictPolicyTest, ResubmitIsDefault) {
  SimConfig config;
  EXPECT_EQ(config.conflict_policy, ConflictPolicy::kResubmit);
}

TEST(TaskSchedulerReservationTest, ReservationBlocksTasksUntilReleased) {
  ClusterState state = ClusterBuilder().NumNodes(2).NumRacks(1).Build();
  TaskScheduler sched(&state);
  // Reserve all of node 0 and node 1.
  sched.AddReservation(ApplicationId(7), {{NodeId(0), Resource(16 * 1024, 8)},
                                          {NodeId(1), Resource(16 * 1024, 8)}});
  sched.SubmitJob(ApplicationId(1), "default", {TaskRequest{Resource(1024, 1), 1000}}, 0);
  EXPECT_TRUE(sched.Tick(0).empty());
  sched.ReleaseReservation(ApplicationId(7));
  EXPECT_EQ(sched.Tick(1).size(), 1u);
}

TEST(TaskSchedulerReservationTest, EvictRequeuesAtHead) {
  ClusterState state = ClusterBuilder().NumNodes(1).NumRacks(1).Build();
  TaskScheduler sched(&state);
  sched.SubmitJob(ApplicationId(1), "default", {TaskRequest{Resource(1024, 1), 5000}}, 0);
  const auto allocations = sched.Tick(0);
  ASSERT_EQ(allocations.size(), 1u);
  EXPECT_TRUE(sched.IsRunning(allocations[0].container));
  ASSERT_TRUE(sched.EvictTask(allocations[0].container, 100, 5000).ok());
  EXPECT_FALSE(sched.IsRunning(allocations[0].container));
  EXPECT_EQ(sched.pending_tasks(), 1u);
  EXPECT_EQ(state.num_containers(), 0u);
  // It reruns on the next tick.
  EXPECT_EQ(sched.Tick(200).size(), 1u);
}

// ---- Unavailability trace ------------------------------------------------------

TEST(UnavailabilityTest, TraceDimensionsAndRange) {
  UnavailabilityConfig config;
  const auto trace = UnavailabilityTrace::Generate(config, 5);
  EXPECT_EQ(trace.hours(), 360);
  EXPECT_EQ(trace.service_units(), 25);
  for (int h = 0; h < trace.hours(); ++h) {
    for (int s = 0; s < trace.service_units(); ++s) {
      const double f = trace.FractionDown(h, s);
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0);
    }
  }
}

TEST(UnavailabilityTest, BaselineUsuallyLow) {
  const auto trace = UnavailabilityTrace::Generate(UnavailabilityConfig{}, 6);
  int low = 0, total = 0;
  for (int h = 0; h < trace.hours(); ++h) {
    for (int s = 0; s < trace.service_units(); ++s) {
      ++total;
      if (trace.FractionDown(h, s) < 0.03) {
        ++low;
      }
    }
  }
  // Property (i) of Fig. 3: usually below 3%.
  EXPECT_GT(static_cast<double>(low) / total, 0.80);
}

TEST(UnavailabilityTest, SpikesOccur) {
  const auto trace = UnavailabilityTrace::Generate(UnavailabilityConfig{}, 7);
  double max_su = 0.0;
  for (int h = 0; h < trace.hours(); ++h) {
    for (int s = 0; s < trace.service_units(); ++s) {
      max_su = std::max(max_su, trace.FractionDown(h, s));
    }
  }
  // Property (ii): spikes to >= 25% within a service unit.
  EXPECT_GE(max_su, 0.25);
}

TEST(UnavailabilityTest, ServiceUnitsFailAsynchronously) {
  const auto trace = UnavailabilityTrace::Generate(UnavailabilityConfig{}, 8);
  // Property (iii): when the worst SU is heavily down, the cluster total
  // stays far lower.
  for (int h = 0; h < trace.hours(); ++h) {
    double worst = 0.0;
    for (int s = 0; s < trace.service_units(); ++s) {
      worst = std::max(worst, trace.FractionDown(h, s));
    }
    if (worst >= 0.9) {
      EXPECT_LT(trace.TotalFractionDown(h), 0.4);
    }
  }
}

TEST(UnavailabilityTest, SpreadPlacementLosesLess) {
  const auto trace = UnavailabilityTrace::Generate(UnavailabilityConfig{}, 9);
  // 100 containers: spread over 25 SUs vs packed into 2.
  std::vector<int> spread(25, 4);
  std::vector<int> packed(25, 0);
  packed[0] = 50;
  packed[1] = 50;
  double spread_max = 0, packed_max = 0;
  for (int h = 0; h < trace.hours(); ++h) {
    spread_max = std::max(spread_max, LraUnavailableFraction(trace, h, spread));
    packed_max = std::max(packed_max, LraUnavailableFraction(trace, h, packed));
  }
  EXPECT_LT(spread_max, packed_max);
}

TEST(UnavailabilityTest, DeterministicPerSeed) {
  const auto a = UnavailabilityTrace::Generate(UnavailabilityConfig{}, 10);
  const auto b = UnavailabilityTrace::Generate(UnavailabilityConfig{}, 10);
  for (int h = 0; h < a.hours(); h += 17) {
    for (int s = 0; s < a.service_units(); ++s) {
      EXPECT_DOUBLE_EQ(a.FractionDown(h, s), b.FractionDown(h, s));
    }
  }
}

}  // namespace
}  // namespace medea
