// Edge-case coverage across modules: empty/degenerate inputs, boundary
// values, and defensive paths that the scenario-driven tests do not reach.

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/core/constraint_manager.h"
#include "src/core/violation.h"
#include "src/schedulers/candidates.h"
#include "src/schedulers/greedy.h"
#include "src/schedulers/migration.h"
#include "src/sim/unavailability.h"
#include "src/workload/gridmix.h"

namespace medea {
namespace {

// ---- Statistics edge cases ---------------------------------------------------

TEST(StatsEdge, SingleSample) {
  Distribution d;
  d.Add(7.0);
  EXPECT_DOUBLE_EQ(d.Percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(d.Percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(d.Percentile(100), 7.0);
  EXPECT_DOUBLE_EQ(d.StdDev(), 0.0);
  EXPECT_DOUBLE_EQ(d.CoefficientOfVariationPct(), 0.0);
}

TEST(StatsEdge, EmptyDistribution) {
  Distribution d;
  EXPECT_TRUE(d.Empty());
  EXPECT_DOUBLE_EQ(d.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(d.CdfAt(5.0), 0.0);
  EXPECT_TRUE(d.CdfPoints(10).empty());
  const auto box = d.Box();
  EXPECT_DOUBLE_EQ(box.p50, 0.0);
}

TEST(StatsEdge, NegativeSamples) {
  Distribution d;
  d.AddAll({-3, -1, -2});
  EXPECT_DOUBLE_EQ(d.Min(), -3.0);
  EXPECT_DOUBLE_EQ(d.Max(), -1.0);
  EXPECT_DOUBLE_EQ(d.Mean(), -2.0);
  EXPECT_GT(d.CoefficientOfVariationPct(), 0.0);  // uses |mean|
}

// ---- Cluster / groups edge cases -----------------------------------------------

TEST(ClusterEdge, SingleNodeClusterBuilds) {
  ClusterState state = ClusterBuilder().NumNodes(1).NumRacks(5).NumUpgradeDomains(9).Build();
  EXPECT_EQ(state.num_nodes(), 1u);
  // Partition counts clamp to the node count.
  EXPECT_EQ(state.groups().NumSets(kNodeGroupRack), 1u);
}

TEST(ClusterEdge, ZeroDemandContainer) {
  ClusterState state = ClusterBuilder().NumNodes(2).Build();
  auto c = state.Allocate(ApplicationId(1), NodeId(0), Resource(0, 0), {}, true);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(state.node(NodeId(0)).used(), Resource::Zero());
  EXPECT_EQ(state.node(NodeId(0)).containers().size(), 1u);
  EXPECT_TRUE(state.Release(*c).ok());
}

TEST(ClusterEdge, ReleaseUnknownContainerFails) {
  ClusterState state = ClusterBuilder().NumNodes(2).Build();
  EXPECT_EQ(state.Release(ContainerId(123)).code(), StatusCode::kNotFound);
  EXPECT_EQ(state.ReleaseApplication(ApplicationId(9)), 0);
}

// ---- Constraint evaluation edge cases --------------------------------------------

TEST(ViolationEdge, ConstraintOnUnknownGroupKindTreatedAsUnsatisfiable) {
  ClusterState state = ClusterBuilder().NumNodes(4).Build();
  ConstraintManager manager(state.groups_ptr());
  // Registered kinds only — the manager rejects unknown kinds up front.
  auto bad = manager.AddFromText("{a, {b, 1, inf}, nonexistent}", ConstraintOrigin::kOperator);
  EXPECT_FALSE(bad.ok());
}

TEST(ViolationEdge, ZeroConstraintsReport) {
  ClusterState state = ClusterBuilder().NumNodes(4).Build();
  ConstraintManager manager(state.groups_ptr());
  ASSERT_TRUE(
      state.Allocate(ApplicationId(1), NodeId(0), Resource(1, 1), {TagId(0)}, true).ok());
  const auto report = ConstraintEvaluator::EvaluateAll(state, manager);
  EXPECT_EQ(report.total_subjects, 0);
  EXPECT_DOUBLE_EQ(report.ViolationFraction(), 0.0);
}

TEST(ViolationEdge, CminGreaterThanPossibleAlwaysViolated) {
  ClusterState state = ClusterBuilder().NumNodes(2).Build();
  ConstraintManager manager(state.groups_ptr());
  const TagId w = manager.tags().Intern("w");
  ASSERT_TRUE(manager.AddFromText("{w, {w, 99, inf}, node}", ConstraintOrigin::kOperator).ok());
  ASSERT_TRUE(state.Allocate(ApplicationId(1), NodeId(0), Resource(1, 1), {w}, true).ok());
  const auto report = ConstraintEvaluator::EvaluateAll(state, manager);
  EXPECT_EQ(report.violated_subjects, 1);
  // Extent is the normalized shortfall: 99/99 = 1.
  EXPECT_NEAR(report.total_extent, 1.0, 1e-9);
}

// ---- Scheduler framework edge cases ------------------------------------------------

TEST(SchedulerEdge, EmptyPoolYieldsNoCandidates) {
  ClusterState state = ClusterBuilder().NumNodes(2).Build();
  ConstraintManager manager(state.groups_ptr());
  // All nodes down.
  state.SetNodeAvailable(NodeId(0), false);
  state.SetNodeAvailable(NodeId(1), false);
  PlacementProblem problem;
  LraRequest lra;
  lra.app = ApplicationId(1);
  lra.containers.push_back(ContainerRequest{Resource(1, 1), {}});
  problem.lras = {lra};
  problem.state = &state;
  problem.manager = &manager;
  SchedulerConfig config;
  const CandidateSelector selector(config);
  const auto pool = selector.BuildPool(problem, FindRelevantConstraints(problem));
  EXPECT_TRUE(pool.nodes.empty());
  // The greedy scheduler copes: LRA simply not placed.
  GreedyScheduler greedy(GreedyOrdering::kSerial, config);
  const auto plan = greedy.Place(problem);
  EXPECT_EQ(plan.NumPlaced(), 0);
}

TEST(SchedulerEdge, LraWithZeroContainersIsTriviallyPlaced) {
  ClusterState state = ClusterBuilder().NumNodes(2).Build();
  ConstraintManager manager(state.groups_ptr());
  PlacementProblem problem;
  LraRequest lra;
  lra.app = ApplicationId(1);
  problem.lras = {lra};
  problem.state = &state;
  problem.manager = &manager;
  GreedyScheduler greedy(GreedyOrdering::kSerial, SchedulerConfig{});
  const auto plan = greedy.Place(problem);
  EXPECT_EQ(plan.NumPlaced(), 1);
  EXPECT_TRUE(plan.assignments.empty());
  EXPECT_TRUE(CommitPlan(problem, plan, state));
}

TEST(MigrationEdge, EmptyClusterPlansNothing) {
  ClusterState state = ClusterBuilder().NumNodes(4).Build();
  ConstraintManager manager(state.groups_ptr());
  MigrationPlanner planner(MigrationConfig{});
  const auto plan = planner.Plan(state, manager);
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_DOUBLE_EQ(plan.extent_before, 0.0);
}

// ---- Workload generator edge cases ---------------------------------------------

TEST(WorkloadEdge, GridMixZeroFraction) {
  GridMixGenerator gen(GridMixConfig{}, 1);
  EXPECT_TRUE(gen.JobsForMemoryFraction(Resource(1024, 1), 0.0).empty());
}

TEST(WorkloadEdge, UnavailabilityTinyTrace) {
  UnavailabilityConfig config;
  config.hours = 1;
  config.num_service_units = 1;
  const auto trace = UnavailabilityTrace::Generate(config, 3);
  EXPECT_EQ(trace.hours(), 1);
  const double f = trace.FractionDown(0, 0);
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
  EXPECT_DOUBLE_EQ(trace.TotalFractionDown(0), f);
}

TEST(WorkloadEdge, LraUnavailableFractionEmptyPlacement) {
  const auto trace = UnavailabilityTrace::Generate(UnavailabilityConfig{}, 3);
  EXPECT_DOUBLE_EQ(LraUnavailableFraction(trace, 0, {}), 0.0);
  EXPECT_DOUBLE_EQ(LraUnavailableFraction(trace, 0, {0, 0, 0}), 0.0);
}

}  // namespace
}  // namespace medea
