// Tests for src/common: resources, results, RNG determinism and
// distributional sanity, statistics, and string utilities.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/resource.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/common/types.h"

namespace medea {
namespace {

TEST(ResourceTest, ArithmeticAndComparison) {
  const Resource a(1024, 2);
  const Resource b(512, 1);
  EXPECT_EQ(a + b, Resource(1536, 3));
  EXPECT_EQ(a - b, Resource(512, 1));
  EXPECT_EQ(b * 3, Resource(1536, 3));
  EXPECT_TRUE(a.Fits(b));
  EXPECT_FALSE(b.Fits(a));
  EXPECT_TRUE(a.Fits(a));
}

TEST(ResourceTest, FitsRequiresEveryDimension) {
  const Resource node(4096, 2);
  EXPECT_FALSE(node.Fits(Resource(1024, 3)));  // enough memory, not enough cores
  EXPECT_FALSE(node.Fits(Resource(8192, 1)));  // enough cores, not enough memory
  EXPECT_TRUE(node.Fits(Resource(4096, 2)));
}

TEST(ResourceTest, NegativeDetection) {
  Resource r(100, 1);
  r -= Resource(200, 0);
  EXPECT_TRUE(r.IsNegative());
  EXPECT_FALSE(Resource(0, 0).IsNegative());
  EXPECT_TRUE(Resource(0, 0).IsZero());
}

TEST(ResourceTest, DominantShare) {
  const Resource cap(1000, 10);
  EXPECT_DOUBLE_EQ(Resource(500, 1).DominantShareOf(cap), 0.5);
  EXPECT_DOUBLE_EQ(Resource(100, 8).DominantShareOf(cap), 0.8);
  EXPECT_DOUBLE_EQ(Resource(0, 0).DominantShareOf(cap), 0.0);
  EXPECT_DOUBLE_EQ(Resource(10, 1).DominantShareOf(Resource(0, 0)), 0.0);
}

TEST(ResourceTest, MinMax) {
  const Resource a(100, 5);
  const Resource b(200, 2);
  EXPECT_EQ(Resource::Min(a, b), Resource(100, 2));
  EXPECT_EQ(Resource::Max(a, b), Resource(200, 5));
}

TEST(StrongIdTest, DistinctTypesAndValidity) {
  const NodeId n(3);
  EXPECT_TRUE(n.IsValid());
  EXPECT_FALSE(NodeId::Invalid().IsValid());
  EXPECT_EQ(NodeId(3), NodeId(3));
  EXPECT_NE(NodeId(3), NodeId(4));
  EXPECT_LT(NodeId(3), NodeId(4));
}

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status s = Status::NotFound("missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Status::InvalidArgument("bad");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(2.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, WeightedSamplingRespectsWeights) {
  Rng rng(23);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.NextWeighted(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child stream should not replay the parent stream.
  Rng parent2(31);
  parent2.Fork();
  EXPECT_NE(child.NextU64(), parent.NextU64());
}

TEST(DistributionTest, Percentiles) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) {
    d.Add(i);
  }
  EXPECT_DOUBLE_EQ(d.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(d.Percentile(100), 100.0);
  EXPECT_NEAR(d.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(d.Percentile(25), 25.75, 1e-9);
}

TEST(DistributionTest, BoxPlotOrdering) {
  Distribution d;
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    d.Add(rng.NextDouble(0, 100));
  }
  const auto box = d.Box();
  EXPECT_LE(box.p5, box.p25);
  EXPECT_LE(box.p25, box.p50);
  EXPECT_LE(box.p50, box.p75);
  EXPECT_LE(box.p75, box.p99);
}

TEST(DistributionTest, CdfMonotone) {
  Distribution d;
  d.AddAll({1, 2, 2, 3, 10});
  EXPECT_DOUBLE_EQ(d.CdfAt(0), 0.0);
  EXPECT_DOUBLE_EQ(d.CdfAt(2), 0.6);
  EXPECT_DOUBLE_EQ(d.CdfAt(100), 1.0);
  const auto points = d.CdfPoints(10);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i - 1].first, points[i].first);
    EXPECT_LE(points[i - 1].second, points[i].second);
  }
}

TEST(DistributionTest, CoefficientOfVariation) {
  Distribution uniform;
  uniform.AddAll({5, 5, 5, 5});
  EXPECT_DOUBLE_EQ(uniform.CoefficientOfVariationPct(), 0.0);
  Distribution spread;
  spread.AddAll({0, 10});
  EXPECT_NEAR(spread.CoefficientOfVariationPct(), 100.0, 1e-9);
}

TEST(RunningStatTest, TracksMeanMinMax) {
  RunningStat s;
  s.Add(1);
  s.Add(3);
  s.Add(5);
  EXPECT_EQ(s.Count(), 3u);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
}

TEST(StringsTest, SplitTrimJoin) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Join({"a", "b"}, "-"), "a-b");
  EXPECT_TRUE(StartsWith("appID:3", "appID:"));
  EXPECT_FALSE(StartsWith("ap", "appID:"));
}

TEST(StringsTest, ParseNonNegativeInt) {
  EXPECT_EQ(ParseNonNegativeInt("42"), 42);
  EXPECT_EQ(ParseNonNegativeInt(" 7 "), 7);
  EXPECT_EQ(ParseNonNegativeInt("0"), 0);
  EXPECT_EQ(ParseNonNegativeInt("-1"), -1);
  EXPECT_EQ(ParseNonNegativeInt("x"), -1);
  EXPECT_EQ(ParseNonNegativeInt(""), -1);
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

}  // namespace
}  // namespace medea
