// Copyright (c) Medea reproduction authors.
// Round-trip tests: WriteLpFormat -> ParseLpFormat must reproduce the model
// structurally — bounds (two-sided, free, fixed, defaults), both objective
// senses, all three row senses, and the General/Binary integrality markers.

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/solver/lp_reader.h"
#include "src/solver/lp_writer.h"
#include "src/solver/model.h"

namespace medea::solver {
namespace {

// Structural equality by variable *name*: the LP format preserves row order
// but not variable index order (a variable absent from the objective is only
// discovered later, in a row or Bounds line), so models are compared through
// the name mapping. Every test model names its variables explicitly.
void ExpectModelsEquivalent(const Model& a, const Model& b) {
  ASSERT_EQ(a.num_variables(), b.num_variables());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  EXPECT_EQ(a.maximize(), b.maximize());
  EXPECT_EQ(a.num_integer_variables(), b.num_integer_variables());
  auto index_by_name = [](const Model& m) {
    std::map<std::string, int> index;
    for (int j = 0; j < m.num_variables(); ++j) {
      index[m.column(j).name] = j;
    }
    return index;
  };
  const std::map<std::string, int> b_index = index_by_name(b);
  for (int j = 0; j < a.num_variables(); ++j) {
    const auto& ca = a.column(j);
    SCOPED_TRACE("variable " + ca.name);
    const auto it = b_index.find(ca.name);
    ASSERT_NE(it, b_index.end()) << "variable lost in round-trip";
    const auto& cb = b.column(it->second);
    EXPECT_EQ(ca.type, cb.type);
    EXPECT_DOUBLE_EQ(ca.lower, cb.lower);
    EXPECT_DOUBLE_EQ(ca.upper, cb.upper);
    EXPECT_DOUBLE_EQ(ca.objective, cb.objective);
  }
  for (int r = 0; r < a.num_rows(); ++r) {
    SCOPED_TRACE("row " + std::to_string(r));
    const auto& ra = a.row(r);
    const auto& rb = b.row(r);
    EXPECT_EQ(ra.sense, rb.sense);
    EXPECT_DOUBLE_EQ(ra.rhs, rb.rhs);
    ASSERT_EQ(ra.terms.size(), rb.terms.size());
    // Compare terms as (name, coeff) multisets; indices differ across the
    // round-trip, term order within a row may too.
    std::vector<std::pair<std::string, double>> ta;
    std::vector<std::pair<std::string, double>> tb;
    for (const auto& [var, coeff] : ra.terms) {
      ta.emplace_back(a.column(var).name, coeff);
    }
    for (const auto& [var, coeff] : rb.terms) {
      tb.emplace_back(b.column(var).name, coeff);
    }
    std::sort(ta.begin(), ta.end());
    std::sort(tb.begin(), tb.end());
    EXPECT_EQ(ta, tb);
  }
}

Model RoundTrip(const Model& model) {
  const std::string text = WriteLpFormat(model);
  auto parsed = ParseLpFormat(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  return *parsed;
}

TEST(LpRoundTripTest, BoundsVariety) {
  Model model;
  model.SetMaximize(true);
  model.AddVariable(0.0, kInfinity, 1.0, VarType::kContinuous, "default_bounds");
  model.AddVariable(2.5, 7.5, -2.0, VarType::kContinuous, "two_sided");
  model.AddVariable(-kInfinity, kInfinity, 3.0, VarType::kContinuous, "free_var");
  model.AddVariable(-4.0, kInfinity, 0.5, VarType::kContinuous, "negative_lower");
  model.AddVariable(0.0, 9.0, 0.0, VarType::kContinuous, "no_objective");
  model.AddVariable(3.0, 3.0, 1.5, VarType::kContinuous, "fixed_var");
  model.AddRow({{0, 1.0}, {1, 2.0}, {2, -1.0}}, RowSense::kLessEqual, 10.0, "cap");
  ExpectModelsEquivalent(model, RoundTrip(model));
}

TEST(LpRoundTripTest, RowSenses) {
  Model model;
  model.SetMaximize(false);
  model.AddVariable(0.0, 10.0, 1.0, VarType::kContinuous, "x");
  model.AddVariable(0.0, 10.0, 2.0, VarType::kContinuous, "y");
  model.AddRow({{0, 1.0}, {1, 1.0}}, RowSense::kLessEqual, 8.0, "le");
  model.AddRow({{0, 2.0}, {1, -3.0}}, RowSense::kGreaterEqual, -6.0, "ge");
  model.AddRow({{0, 1.0}, {1, -1.0}}, RowSense::kEqual, 0.5, "eq");
  ExpectModelsEquivalent(model, RoundTrip(model));
}

TEST(LpRoundTripTest, IntegralityMarkers) {
  Model model;
  model.SetMaximize(true);
  model.AddBinary(5.0, "pick");
  model.AddVariable(0.0, 7.0, 2.0, VarType::kInteger, "count");
  model.AddVariable(0.0, 1.5, 1.0, VarType::kContinuous, "frac");
  model.AddVariable(-2.0, 4.0, -1.0, VarType::kInteger, "signed_int");
  model.AddRow({{0, 1.0}, {1, 1.0}, {2, 1.0}, {3, 1.0}}, RowSense::kLessEqual, 6.0, "sum");
  const Model reparsed = RoundTrip(model);
  ExpectModelsEquivalent(model, reparsed);
  EXPECT_EQ(reparsed.column(0).type, VarType::kBinary);
  EXPECT_EQ(reparsed.column(1).type, VarType::kInteger);
  EXPECT_EQ(reparsed.column(2).type, VarType::kContinuous);
  EXPECT_EQ(reparsed.column(3).type, VarType::kInteger);
}

TEST(LpRoundTripTest, SecondRoundTripIsIdentity) {
  // Writer output must be a fixed point: write(parse(write(m))) == write(m).
  Model model;
  model.SetMaximize(true);
  model.AddBinary(1.0, "b");
  model.AddVariable(-1.0, 5.0, 2.5, VarType::kContinuous, "c");
  model.AddVariable(0.0, 3.0, -4.0, VarType::kInteger, "i");
  model.AddRow({{0, 2.0}, {2, 1.0}}, RowSense::kGreaterEqual, 1.0, "r0");
  model.AddRow({{1, 1.0}, {2, -2.0}}, RowSense::kEqual, 0.0, "r1");
  const std::string once = WriteLpFormat(model);
  auto parsed = ParseLpFormat(once);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(WriteLpFormat(*parsed), once);
}

TEST(LpRoundTripTest, RandomizedModels) {
  Rng rng(2024);
  for (int iter = 0; iter < 50; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    Model model;
    model.SetMaximize(rng.NextBool(0.5));
    const int num_vars = static_cast<int>(rng.NextInt(1, 10));
    for (int j = 0; j < num_vars; ++j) {
      const std::string name = "v" + std::to_string(j);
      const double objective = static_cast<double>(rng.NextInt(-20, 20)) / 2.0;
      switch (rng.NextBounded(4)) {
        case 0:
          model.AddBinary(objective, name);
          break;
        case 1: {
          const double lower = static_cast<double>(rng.NextInt(-5, 0));
          model.AddVariable(lower, lower + static_cast<double>(rng.NextInt(0, 10)), objective,
                            VarType::kInteger, name);
          break;
        }
        case 2:
          model.AddVariable(-kInfinity, kInfinity, objective, VarType::kContinuous, name);
          break;
        default: {
          const double lower = static_cast<double>(rng.NextInt(-8, 8)) / 2.0;
          model.AddVariable(lower, lower + static_cast<double>(rng.NextInt(0, 12)), objective,
                            VarType::kContinuous, name);
          break;
        }
      }
    }
    const int num_rows = static_cast<int>(rng.NextInt(0, 6));
    for (int r = 0; r < num_rows; ++r) {
      // Distinct indices per row: duplicate terms would be merged by AddRow
      // and could cancel to zero, which the writer legitimately drops.
      std::vector<VarIndex> indices;
      for (int j = 0; j < num_vars; ++j) {
        indices.push_back(j);
      }
      rng.Shuffle(indices);
      std::vector<std::pair<VarIndex, double>> terms;
      const int num_terms = static_cast<int>(rng.NextInt(1, num_vars));
      for (int t = 0; t < num_terms; ++t) {
        double coeff = 0.0;
        while (coeff == 0.0) {
          coeff = static_cast<double>(rng.NextInt(-6, 6)) / 2.0;
        }
        terms.emplace_back(indices[static_cast<size_t>(t)], coeff);
      }
      constexpr RowSense kSenses[] = {RowSense::kLessEqual, RowSense::kGreaterEqual,
                                      RowSense::kEqual};
      model.AddRow(std::move(terms), kSenses[rng.NextBounded(3)],
                   static_cast<double>(rng.NextInt(-10, 10)));
    }
    ExpectModelsEquivalent(model, RoundTrip(model));
  }
}

}  // namespace
}  // namespace medea::solver
