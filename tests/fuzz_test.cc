// Randomized state-machine and round-trip tests ("fuzz-lite"): cluster
// accounting under random allocate/release interleavings, constraint DSL
// round-trips over generated constraints, and solver stress on degenerate
// inputs. All deterministic via seeded RNGs; parameterized over seeds.

#include <gtest/gtest.h>

#include <map>

#include "src/cluster/cluster_state.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/core/constraint_parser.h"
#include "src/solver/mip.h"

namespace medea {
namespace {

// ---- ClusterState accounting fuzz ---------------------------------------------

class ClusterFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ClusterFuzz, AccountingInvariantsHold) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 17);
  ClusterState state = ClusterBuilder()
                           .NumNodes(6)
                           .NumRacks(2)
                           .NumUpgradeDomains(2)
                           .NumServiceUnits(2)
                           .NodeCapacity(Resource(8 * 1024, 4))
                           .Build();
  std::vector<ContainerId> live;
  std::map<uint32_t, Resource> expected_used;  // node -> demand sum

  for (int step = 0; step < 400; ++step) {
    const int action = static_cast<int>(rng.NextBounded(10));
    if (action < 6) {  // allocate
      const NodeId node(static_cast<uint32_t>(rng.NextBounded(6)));
      const Resource demand(rng.NextInt(1, 3000), static_cast<int32_t>(rng.NextInt(0, 2)));
      std::vector<TagId> tags;
      if (rng.NextBool(0.6)) {
        tags.push_back(TagId(static_cast<uint32_t>(rng.NextBounded(4))));
      }
      const bool fits = state.node(node).CanFit(demand);
      auto result = state.Allocate(ApplicationId(static_cast<uint32_t>(rng.NextBounded(5))),
                                   node, demand, tags, rng.NextBool(0.5));
      ASSERT_EQ(result.ok(), fits) << "step " << step;
      if (result.ok()) {
        live.push_back(*result);
        expected_used[node.value] += demand;
      }
    } else if (action < 9 && !live.empty()) {  // release
      const size_t pick = rng.NextBounded(live.size());
      const ContainerId id = live[pick];
      const ContainerInfo* info = state.FindContainer(id);
      ASSERT_NE(info, nullptr);
      expected_used[info->node.value] -= info->resource;
      ASSERT_TRUE(state.Release(id).ok());
      live.erase(live.begin() + static_cast<long>(pick));
    } else if (!live.empty()) {  // release whole app
      const ContainerInfo* info = state.FindContainer(live[rng.NextBounded(live.size())]);
      const ApplicationId app = info->app;
      for (ContainerId id : state.ContainersOf(app)) {
        const ContainerInfo* i = state.FindContainer(id);
        expected_used[i->node.value] -= i->resource;
      }
      state.ReleaseApplication(app);
      std::erase_if(live, [&](ContainerId id) { return state.FindContainer(id) == nullptr; });
    }

    // Invariants after every step.
    for (uint32_t n = 0; n < 6; ++n) {
      const Resource used = state.node(NodeId(n)).used();
      const Resource expected = expected_used.count(n) > 0 ? expected_used[n] : Resource();
      ASSERT_EQ(used, expected) << "node " << n << " step " << step;
      ASSERT_FALSE(used.IsNegative());
      ASSERT_TRUE(state.node(NodeId(n)).capacity().Fits(used));
      // Tag multiset matches containers exactly.
      std::map<uint32_t, int> tag_count;
      for (ContainerId c : state.node(NodeId(n)).containers()) {
        for (TagId t : state.FindContainer(c)->tags) {
          ++tag_count[t.value];
        }
      }
      for (const auto& [tag, count] : tag_count) {
        ASSERT_EQ(state.TagCardinality(NodeId(n), TagId(tag)), count);
      }
    }
    ASSERT_EQ(state.num_containers(), live.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterFuzz, ::testing::Range(0, 8));

// ---- Constraint DSL round-trip fuzz ----------------------------------------------

class ParserFuzz : public ::testing::TestWithParam<int> {};

std::string RandomTag(Rng& rng) {
  static const char* base[] = {"hb", "storm", "spark", "mem", "tf_w", "appID:23", "x1"};
  return base[rng.NextBounded(7)];
}

std::string RandomTagExpr(Rng& rng) {
  std::string out = RandomTag(rng);
  const int extra = static_cast<int>(rng.NextBounded(2));
  for (int i = 0; i < extra; ++i) {
    out += " & " + RandomTag(rng);
  }
  return out;
}

std::string RandomTriple(Rng& rng) {
  const int cmin = static_cast<int>(rng.NextBounded(4));
  const bool unbounded = rng.NextBool(0.4);
  const int cmax = unbounded ? 0 : cmin + static_cast<int>(rng.NextBounded(6));
  return StrFormat("{%s, %d, %s}", RandomTagExpr(rng).c_str(), cmin,
                   unbounded ? "inf" : StrFormat("%d", cmax).c_str());
}

std::string RandomAtomic(Rng& rng) {
  static const char* groups[] = {"node", "rack", "upgrade_domain"};
  std::string targets = RandomTriple(rng);
  if (rng.NextBool(0.25)) {
    targets += " && " + RandomTriple(rng);
  }
  return StrFormat("{%s, %s, %s}", RandomTagExpr(rng).c_str(), targets.c_str(),
                   groups[rng.NextBounded(3)]);
}

TEST_P(ParserFuzz, RoundTripIsStable) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919u + 3);
  for (int trial = 0; trial < 50; ++trial) {
    std::string text = RandomAtomic(rng);
    if (rng.NextBool(0.3)) {
      text += " && " + RandomAtomic(rng);
    }
    if (rng.NextBool(0.3)) {
      text += " || " + RandomAtomic(rng);
    }
    TagPool pool;
    auto first = ParseConstraint(text, pool);
    ASSERT_TRUE(first.ok()) << text;
    const std::string printed = first->ToString(pool);
    auto second = ParseConstraint(printed, pool);
    ASSERT_TRUE(second.ok()) << printed;
    // Fixed point: printing the reparsed constraint yields the same text.
    EXPECT_EQ(second->ToString(pool), printed) << text;
    // Structure is preserved.
    ASSERT_EQ(second->clauses.size(), first->clauses.size());
    for (size_t cl = 0; cl < first->clauses.size(); ++cl) {
      ASSERT_EQ(second->clauses[cl].size(), first->clauses[cl].size());
      for (size_t a = 0; a < first->clauses[cl].size(); ++a) {
        EXPECT_TRUE(second->clauses[cl][a].subject == first->clauses[cl][a].subject);
        EXPECT_EQ(second->clauses[cl][a].node_group, first->clauses[cl][a].node_group);
        ASSERT_EQ(second->clauses[cl][a].targets.size(), first->clauses[cl][a].targets.size());
        for (size_t t = 0; t < first->clauses[cl][a].targets.size(); ++t) {
          EXPECT_EQ(second->clauses[cl][a].targets[t].cmin,
                    first->clauses[cl][a].targets[t].cmin);
          EXPECT_EQ(second->clauses[cl][a].targets[t].cmax,
                    first->clauses[cl][a].targets[t].cmax);
        }
      }
    }
  }
}

TEST_P(ParserFuzz, GarbageNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337u + 11);
  const std::string alphabet = "{}(),&|#0123456789abcinf _:";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const size_t len = rng.NextBounded(60);
    for (size_t i = 0; i < len; ++i) {
      text += alphabet[rng.NextBounded(alphabet.size())];
    }
    TagPool pool;
    // Must not crash; may succeed or fail.
    (void)ParseConstraint(text, pool);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 6));

// ---- Solver stress -----------------------------------------------------------------

TEST(SolverStress, HighlyDegenerateAssignment) {
  // Identical objective coefficients everywhere: maximal degeneracy.
  solver::Model m;
  const int n = 12;
  std::vector<std::vector<int>> x(n, std::vector<int>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      x[i][j] = m.AddBinary(1.0);
    }
  }
  for (int i = 0; i < n; ++i) {
    std::vector<std::pair<int, double>> row_terms, col_terms;
    for (int j = 0; j < n; ++j) {
      row_terms.emplace_back(x[i][j], 1.0);
      col_terms.emplace_back(x[j][i], 1.0);
    }
    m.AddRow(row_terms, solver::RowSense::kLessEqual, 1.0);
    m.AddRow(col_terms, solver::RowSense::kLessEqual, 1.0);
  }
  solver::MipOptions options;
  options.time_limit_seconds = 5.0;
  const auto s = SolveMip(m, options);
  ASSERT_TRUE(s.HasSolution());
  EXPECT_NEAR(s.objective, n, 1e-4);
}

TEST(SolverStress, TinyCoefficientSpread) {
  // Mixed magnitudes stress the pivot tolerance.
  solver::Model m;
  const int a = m.AddContinuous(0, 1e6, 1.0, "a");
  const int b = m.AddContinuous(0, 1e6, 1e-5, "b");
  m.AddRow({{a, 1e-4}, {b, 1.0}}, solver::RowSense::kLessEqual, 10.0);
  m.AddRow({{a, 1.0}, {b, 1e-4}}, solver::RowSense::kLessEqual, 1e5);
  const auto s = SolveLp(m);
  ASSERT_EQ(s.status, solver::SolveStatus::kOptimal);
  EXPECT_TRUE(m.IsFeasible(s.values, 1e-4));
}

}  // namespace
}  // namespace medea
