// Command-line cluster simulator: run a configurable shared-cluster
// scenario through the full Medea pipeline and print the metrics the paper
// evaluates (violations, fragmentation, load imbalance, latencies).
//
//   cluster_sim_cli [--nodes N] [--racks R] [--service-units S]
//                   [--scheduler medea-ilp|medea-nc|medea-tp|serial|
//                               j-kube|j-kube++|yarn]
//                   [--hbase N] [--tensorflow N] [--gridmix-frac F]
//                   [--interval MS] [--minutes M] [--migration MS]
//                   [--conflict resubmit|kill|reserve] [--seed S]
//                   [--runtime] [--runtime-wall-ms MS]
//                   [--solver-threads N] [--solver-decompose]
//                   [--no-solver-cuts] [--no-solver-pseudo-cost]
//                   [--metrics-out FILE] [--trace-out FILE]
//
// --solver-threads N (default 1) runs each ILP scheduling cycle's
// branch-and-bound with N worker threads (parallel tree search with work
// stealing; see docs/solver.md). Only the medea-ilp scheduler uses it.
//
// --solver-decompose splits each cycle ILP into the connected components of
// its variable-row incidence graph and solves them as independent sub-MIPs
// across the worker budget, with a relax-and-round fast lane for large
// components (see docs/solver.md). Only the medea-ilp scheduler uses it.
//
// --no-solver-cuts disables the root cover/clique cutting planes the ILP
// scheduler generates from the placement capacity rows by default
// (SchedulerConfig::solver_cuts); --no-solver-pseudo-cost falls back from
// pseudo-cost to most-fractional branching (see docs/solver.md). Both exist
// for ablations; the defaults are on.
//
// With --runtime the scenario is replayed through the real concurrent
// TwoSchedulerRuntime (src/runtime/) — actual scheduler + heartbeat
// threads, wall-clock compressed to --runtime-wall-ms — instead of the
// deterministic discrete-event simulator.
//
// --metrics-out writes a JSON-lines snapshot of the process-wide
// MetricsRegistry (src/obs) at exit; --trace-out writes a Chrome
// trace_event file loadable in chrome://tracing or https://ui.perfetto.dev
// (see docs/observability.md). Either flag turns the instrumentation on;
// without them the obs layer stays disabled and costs nothing.
//
// Example:
//   ./cluster_sim_cli --nodes 200 --hbase 12 --tensorflow 8
//       --gridmix-frac 0.4 --scheduler medea-ilp --minutes 15

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/core/violation.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/schedulers/greedy.h"
#include "src/schedulers/ilp_scheduler.h"
#include "src/schedulers/jkube.h"
#include "src/schedulers/yarn.h"
#include "src/sim/runtime_driver.h"
#include "src/sim/scenario.h"
#include "src/sim/simulation.h"
#include "src/workload/gridmix.h"
#include "src/workload/lra_templates.h"

using namespace medea;

namespace {

struct Options {
  size_t nodes = 100;
  size_t racks = 10;
  size_t service_units = 10;
  std::string scheduler = "medea-ilp";
  int hbase = 8;
  int tensorflow = 4;
  double gridmix_frac = 0.3;
  SimTimeMs interval_ms = 10000;
  int minutes = 10;
  SimTimeMs migration_ms = 0;
  std::string conflict = "resubmit";
  uint64_t seed = 42;
  // Concurrent mode: drive the same workload through the two-thread
  // TwoSchedulerRuntime instead of the event simulator, compressing the
  // simulated horizon into ~`runtime_wall_ms` of wall time.
  bool runtime_mode = false;
  SimTimeMs runtime_wall_ms = 3000;
  // Branch-and-bound worker threads for the ILP scheduler's per-cycle solve
  // (SchedulerConfig::solver_threads). Must be >= 1.
  int solver_threads = 1;
  // Component-decomposed cycle ILP (SchedulerConfig::solver_decompose).
  bool solver_decompose = false;
  // Root cover/clique cuts for the cycle ILP (SchedulerConfig::solver_cuts).
  bool solver_cuts = true;
  // Pseudo-cost branching (SchedulerConfig::solver_pseudo_cost).
  bool solver_pseudo_cost = true;
  // Observability sinks: enabling either turns the src/obs layer on.
  std::string metrics_out;
  std::string trace_out;
};

std::unique_ptr<LraScheduler> MakeLraScheduler(const Options& options) {
  SchedulerConfig config;
  config.node_pool_size = static_cast<int>(std::min<size_t>(options.nodes, 96));
  config.ilp_time_limit_seconds = 1.0;
  config.solver_threads = options.solver_threads;
  config.solver_decompose = options.solver_decompose;
  config.solver_cuts = options.solver_cuts;
  config.solver_pseudo_cost = options.solver_pseudo_cost;
  config.seed = options.seed;
  if (options.scheduler == "medea-ilp") {
    return std::make_unique<MedeaIlpScheduler>(config);
  }
  if (options.scheduler == "medea-nc") {
    return std::make_unique<GreedyScheduler>(GreedyOrdering::kNodeCandidates, config);
  }
  if (options.scheduler == "medea-tp") {
    return std::make_unique<GreedyScheduler>(GreedyOrdering::kTagPopularity, config);
  }
  if (options.scheduler == "serial") {
    return std::make_unique<GreedyScheduler>(GreedyOrdering::kSerial, config);
  }
  if (options.scheduler == "j-kube") {
    return std::make_unique<JKubeScheduler>(false, config);
  }
  if (options.scheduler == "j-kube++") {
    return std::make_unique<JKubeScheduler>(true, config);
  }
  if (options.scheduler == "yarn") {
    return std::make_unique<YarnScheduler>(config);
  }
  std::fprintf(stderr, "unknown scheduler '%s'\n", options.scheduler.c_str());
  std::exit(2);
}

bool ParseArgs(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--nodes") {
      options.nodes = static_cast<size_t>(std::atoi(next()));
    } else if (flag == "--racks") {
      options.racks = static_cast<size_t>(std::atoi(next()));
    } else if (flag == "--service-units") {
      options.service_units = static_cast<size_t>(std::atoi(next()));
    } else if (flag == "--scheduler") {
      options.scheduler = next();
    } else if (flag == "--hbase") {
      options.hbase = std::atoi(next());
    } else if (flag == "--tensorflow") {
      options.tensorflow = std::atoi(next());
    } else if (flag == "--gridmix-frac") {
      options.gridmix_frac = std::atof(next());
    } else if (flag == "--interval") {
      options.interval_ms = std::atol(next());
    } else if (flag == "--minutes") {
      options.minutes = std::atoi(next());
    } else if (flag == "--migration") {
      options.migration_ms = std::atol(next());
    } else if (flag == "--conflict") {
      options.conflict = next();
    } else if (flag == "--seed") {
      options.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (flag == "--runtime") {
      options.runtime_mode = true;
    } else if (flag == "--runtime-wall-ms") {
      options.runtime_wall_ms = std::atol(next());
    } else if (flag == "--solver-threads") {
      options.solver_threads = std::atoi(next());
      if (options.solver_threads < 1) {
        std::fprintf(stderr,
                     "--solver-threads must be a positive integer, got '%s' "
                     "(1 = serial branch and bound)\n",
                     argv[i]);
        std::exit(2);
      }
    } else if (flag == "--solver-decompose") {
      options.solver_decompose = true;
    } else if (flag == "--solver-cuts") {
      options.solver_cuts = true;
    } else if (flag == "--no-solver-cuts") {
      options.solver_cuts = false;
    } else if (flag == "--solver-pseudo-cost") {
      options.solver_pseudo_cost = true;
    } else if (flag == "--no-solver-pseudo-cost") {
      options.solver_pseudo_cost = false;
    } else if (flag == "--metrics-out") {
      options.metrics_out = next();
    } else if (flag == "--trace-out") {
      options.trace_out = next();
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return false;
    }
  }
  return true;
}

// Turns the obs layer on when a sink flag was given and flushes the
// exporters when the run (either mode) finishes.
class ObsSinks {
 public:
  explicit ObsSinks(const Options& options) : options_(options) {
    if (!options_.metrics_out.empty()) {
      obs::EnableMetrics(true);
    }
    if (!options_.trace_out.empty()) {
      obs::TraceRecorder::Default().Enable(1 << 16);
      obs::SetCurrentThreadName("main");
    }
  }
  ~ObsSinks() {
    if (!options_.metrics_out.empty()) {
      const Status status =
          obs::MetricsRegistry::Default().WriteSnapshotFile(options_.metrics_out);
      if (status.ok()) {
        std::printf("metrics snapshot:         %s\n", options_.metrics_out.c_str());
      } else {
        std::fprintf(stderr, "metrics export failed: %s\n", status.ToString().c_str());
      }
    }
    if (!options_.trace_out.empty()) {
      const Status status =
          obs::TraceRecorder::Default().WriteChromeTrace(options_.trace_out);
      if (status.ok()) {
        std::printf("chrome trace:             %s (open in ui.perfetto.dev)\n",
                    options_.trace_out.c_str());
      } else {
        std::fprintf(stderr, "trace export failed: %s\n", status.ToString().c_str());
      }
    }
  }

 private:
  const Options& options_;
};

// --runtime: same workload, but replayed in wall-clock time against the
// concurrent TwoSchedulerRuntime (LRA scheduler thread + heartbeat thread).
// The simulated horizon is compressed into ~runtime_wall_ms.
int RunRuntimeMode(const Options& options) {
  runtime::RuntimeConfig config;
  config.num_nodes = options.nodes;
  config.num_racks = options.racks;
  config.num_upgrade_domains = options.racks;
  config.num_service_units = options.service_units;
  const SimTimeMs horizon = static_cast<SimTimeMs>(options.minutes) * 60000;
  const SimTimeMs wall = std::max<SimTimeMs>(options.runtime_wall_ms, 100);
  const double compress = std::max(1.0, static_cast<double>(horizon) / static_cast<double>(wall));
  if (options.migration_ms > 0) {
    config.migration_every_heartbeats = std::max<int>(
        1, static_cast<int>(static_cast<double>(options.migration_ms) / compress /
                            static_cast<double>(config.heartbeat_period.count())));
  }
  RuntimeDriver driver(config, MakeLraScheduler(options));

  const auto compressed = [&](SimTimeMs t) {
    return static_cast<SimTimeMs>(static_cast<double>(t) / compress);
  };

  // GridMix batch stream, durations compressed to the wall-clock scale.
  GridMixGenerator gridmix(GridMixConfig{}, options.seed);
  Rng arrivals(options.seed + 1);
  const Resource total_capacity =
      config.node_capacity * static_cast<int64_t>(config.num_nodes);
  auto jobs = gridmix.JobsForMemoryFraction(total_capacity, options.gridmix_frac);
  SimTimeMs t = 0;
  for (auto& job : jobs) {
    t += static_cast<SimTimeMs>(arrivals.NextExponential(
        static_cast<double>(jobs.size()) / static_cast<double>(horizon / 2)));
    for (TaskRequest& task : job) {
      task.duration_ms = std::max<SimTimeMs>(1, compressed(task.duration_ms));
    }
    driver.At(compressed(std::min(t, horizon - 1)),
              [job = std::move(job)](runtime::TwoSchedulerRuntime& rt) mutable {
                rt.SubmitTaskJob(std::move(job));
              });
  }

  // LRAs arriving through the first half of the run.
  uint32_t app = 1;
  Rng lra_arrivals(options.seed + 2);
  for (int i = 0; i < options.hbase; ++i) {
    const ApplicationId id(app++);
    driver.At(compressed(static_cast<SimTimeMs>(
                  lra_arrivals.NextBounded(static_cast<uint64_t>(horizon / 2)))),
              [id](runtime::TwoSchedulerRuntime& rt) {
                rt.SubmitLra(rt.BuildSpec(
                    [&](TagPool& tags) { return MakeHBaseInstance(id, tags, 10); }));
              });
  }
  for (int i = 0; i < options.tensorflow; ++i) {
    const ApplicationId id(app++);
    driver.At(compressed(static_cast<SimTimeMs>(
                  lra_arrivals.NextBounded(static_cast<uint64_t>(horizon / 2)))),
              [id](runtime::TwoSchedulerRuntime& rt) {
                rt.SubmitLra(rt.BuildSpec(
                    [&](TagPool& tags) { return MakeTensorFlowInstance(id, tags, 8, 2); }));
              });
  }

  const runtime::RuntimeMetrics metrics = driver.Run(wall);

  ViolationReport report;
  double memory_utilization = 0.0;
  double fragmented = 0.0;
  driver.runtime().WithStateLocked([&](const ClusterState& state,
                                       const ConstraintManager& manager) {
    report = ConstraintEvaluator::EvaluateAll(state, manager);
    const Resource total = state.TotalCapacity();
    memory_utilization = total.memory_mb == 0
                             ? 0.0
                             : static_cast<double>(state.TotalUsed().memory_mb) /
                                   static_cast<double>(total.memory_mb);
    fragmented = state.FragmentedNodeFraction(Resource(2048, 1));
  });

  std::printf("=== %s (concurrent runtime) on %zu nodes, %lld ms wall ===\n",
              options.scheduler.c_str(), options.nodes, static_cast<long long>(wall));
  std::printf("LRA cycles / heartbeats:  %d / %d\n", metrics.lra_cycles, metrics.heartbeats);
  std::printf("LRAs placed/rejected:     %d / %d (resubmissions %d, conflicts %d, stale "
              "plans %d)\n",
              metrics.lras_placed, metrics.lras_rejected, metrics.lra_resubmissions,
              metrics.commit_conflicts, metrics.stale_plans);
  std::printf("tasks completed:          %d\n", metrics.tasks_completed);
  if (options.migration_ms > 0) {
    std::printf("containers migrated:      %d\n", metrics.migrations);
  }
  std::printf("constraint violations:    %d / %d subjects (%.1f%%)\n", report.violated_subjects,
              report.total_subjects, 100.0 * report.ViolationFraction());
  std::printf("memory utilization:       %.0f%%\n", 100.0 * memory_utilization);
  std::printf("fragmented nodes:         %.1f%%\n", 100.0 * fragmented);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Scenario-file mode: `cluster_sim_cli --scenario FILE` replays a textual
  // scenario (see src/sim/scenario.h for the format).
  if (argc == 3 && std::string(argv[1]) == "--scenario") {
    auto outcome = RunScenarioFile(argv[2]);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("=== scenario %s ===\n%s", argv[2], outcome->Summary().c_str());
    return 0;
  }

  Options options;
  if (!ParseArgs(argc, argv, options)) {
    std::printf("usage: %s [--nodes N] [--scheduler NAME] [--hbase N] [--tensorflow N]\n"
                "          [--gridmix-frac F] [--interval MS] [--minutes M]\n"
                "          [--migration MS] [--conflict resubmit|kill|reserve] [--seed S]\n"
                "          [--runtime] [--runtime-wall-ms MS]\n"
                "          [--solver-threads N] [--solver-decompose]\n"
                "          [--no-solver-cuts] [--no-solver-pseudo-cost]\n"
                "          [--metrics-out FILE] [--trace-out FILE]\n"
                "       %s --scenario FILE\n",
                argv[0], argv[0]);
    return 2;
  }

  const ObsSinks sinks(options);

  if (options.runtime_mode) {
    return RunRuntimeMode(options);
  }

  SimConfig config;
  config.num_nodes = options.nodes;
  config.num_racks = options.racks;
  config.num_upgrade_domains = options.racks;
  config.num_service_units = options.service_units;
  config.lra_interval_ms = options.interval_ms;
  config.migration_interval_ms = options.migration_ms;
  if (options.conflict == "kill") {
    config.conflict_policy = ConflictPolicy::kKillTasks;
  } else if (options.conflict == "reserve") {
    config.conflict_policy = ConflictPolicy::kReserve;
  }

  Simulation sim(config, MakeLraScheduler(options));
  const SimTimeMs horizon = static_cast<SimTimeMs>(options.minutes) * 60000;

  // GridMix batch stream: jobs arriving through the run, sized so the
  // aggregate reaches the requested fraction of memory.
  GridMixGenerator gridmix(GridMixConfig{}, options.seed);
  Rng arrivals(options.seed + 1);
  const auto jobs =
      gridmix.JobsForMemoryFraction(sim.state().TotalCapacity(), options.gridmix_frac);
  SimTimeMs t = 0;
  for (const auto& job : jobs) {
    t += static_cast<SimTimeMs>(arrivals.NextExponential(
        static_cast<double>(jobs.size()) / static_cast<double>(horizon / 2)));
    sim.SubmitTaskJobAt(std::min(t, horizon - 1), job);
  }

  // LRAs arriving through the first half of the run.
  uint32_t app = 1;
  Rng lra_arrivals(options.seed + 2);
  for (int i = 0; i < options.hbase; ++i) {
    sim.SubmitLraAt(lra_arrivals.NextBounded(static_cast<uint64_t>(horizon / 2)),
                    MakeHBaseInstance(ApplicationId(app++), sim.manager().tags(), 10));
  }
  for (int i = 0; i < options.tensorflow; ++i) {
    sim.SubmitLraAt(lra_arrivals.NextBounded(static_cast<uint64_t>(horizon / 2)),
                    MakeTensorFlowInstance(ApplicationId(app++), sim.manager().tags(), 8, 2));
  }

  sim.RunUntil(horizon);

  const SimMetrics& metrics = sim.metrics();
  const auto report = sim.EvaluateViolations();
  Distribution node_util;
  node_util.AddAll(sim.state().NodeMemoryUtilization());

  std::printf("=== %s on %zu nodes, %d min ===\n", options.scheduler.c_str(), options.nodes,
              options.minutes);
  std::printf("LRAs placed/rejected:     %d / %d (resubmissions %d, conflicts %d)\n",
              metrics.lras_placed, metrics.lras_rejected, metrics.lra_resubmissions,
              metrics.commit_conflicts);
  if (config.conflict_policy == ConflictPolicy::kKillTasks) {
    std::printf("tasks killed:             %d\n", metrics.tasks_killed);
  }
  if (config.conflict_policy == ConflictPolicy::kReserve) {
    std::printf("reservations made:        %d\n", metrics.reservations_made);
  }
  if (options.migration_ms > 0) {
    std::printf("containers migrated:      %d\n", metrics.migrations);
  }
  std::printf("LRA cycle latency (ms):   mean %.1f  max %.1f over %d cycles\n",
              metrics.lra_cycle_latency_ms.Mean(),
              metrics.lra_cycle_latency_ms.Empty() ? 0.0 : metrics.lra_cycle_latency_ms.Max(),
              metrics.cycles);
  std::printf("task allocations:         %zu, mean queueing %.0f ms\n",
              sim.task_scheduler().allocation_latency_ms().Count(),
              sim.task_scheduler().allocation_latency_ms().Mean());
  std::printf("constraint violations:    %d / %d subjects (%.1f%%)\n",
              report.violated_subjects, report.total_subjects,
              100.0 * report.ViolationFraction());
  std::printf("memory utilization:       %.0f%% (node CV %.1f%%)\n",
              100.0 * sim.MemoryUtilization(), node_util.CoefficientOfVariationPct());
  std::printf("fragmented nodes:         %.1f%%\n",
              100.0 * sim.state().FragmentedNodeFraction(Resource(2048, 1)));
  return 0;
}
