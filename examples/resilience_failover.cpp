// Example: surviving correlated failures with high-level constraints (§2.3).
//
// A 100-container service is deployed twice on a 100-node cluster with 10
// service units: once spread across service units with a Medea cardinality
// constraint, once packed by a constraint-unaware scheduler. An entire
// service unit then fails (the correlated-failure pattern of Fig. 3) and
// the example reports how much of each deployment survived — and shows the
// simulator healing the lost containers on the remaining nodes.

#include <cstdio>
#include <memory>

#include "src/schedulers/ilp_scheduler.h"
#include "src/schedulers/yarn.h"
#include "src/sim/simulation.h"
#include "src/workload/lra_templates.h"

using namespace medea;

namespace {

struct Outcome {
  size_t containers_before = 0;
  int lost = 0;
  size_t containers_after_heal = 0;
};

Outcome Deploy(bool spread) {
  SimConfig config;
  config.num_nodes = 100;
  config.num_racks = 10;
  config.num_upgrade_domains = 10;
  config.num_service_units = 10;
  SchedulerConfig sc;
  sc.node_pool_size = 100;
  sc.ilp_time_limit_seconds = 1.0;
  // The packed variant mimics a constraint-unaware scheduler that fills the
  // least-loaded nodes — which all sit in the same service units at first.
  std::unique_ptr<LraScheduler> scheduler;
  if (spread) {
    scheduler = std::make_unique<MedeaIlpScheduler>(sc);
  } else {
    scheduler = std::make_unique<YarnScheduler>(sc, YarnPolicy::kPack);
  }
  Simulation sim(config, std::move(scheduler));

  auto service = MakeGenericLra(ApplicationId(1), sim.manager().tags(), 100, "svc");
  if (spread) {
    // At most ceil(100/10) = 10 containers of the service per service unit.
    service.app_constraints.push_back("{svc, {svc, 0, 9}, service_unit}");
  }
  sim.SubmitLraAt(0, std::move(service));
  sim.RunUntil(20000);

  Outcome outcome;
  outcome.containers_before = sim.state().ContainersOf(ApplicationId(1)).size();

  // Service unit 0 (nodes 0-9) fails wholesale.
  for (uint32_t n = 0; n < 10; ++n) {
    sim.NodeDownAt(30000, NodeId(n));
  }
  sim.RunUntil(31000);
  outcome.lost = sim.metrics().lra_containers_lost;

  // The simulator resubmits the lost containers; they land on healthy units.
  sim.RunUntilQuiescent();
  outcome.containers_after_heal = sim.state().ContainersOf(ApplicationId(1)).size();
  return outcome;
}

}  // namespace

int main() {
  std::printf("=== A 100-container service vs a full service-unit outage ===\n");
  const Outcome packed = Deploy(false);
  const Outcome spread = Deploy(true);
  std::printf("%-26s %12s %18s %16s\n", "placement", "deployed", "lost in outage",
              "after healing");
  std::printf("%-26s %12zu %17d%% %16zu\n", "packed (no constraints)",
              packed.containers_before, packed.lost, packed.containers_after_heal);
  std::printf("%-26s %12zu %17d%% %16zu\n", "Medea SU-spread",
              spread.containers_before, spread.lost, spread.containers_after_heal);
  std::printf("\nspreading across service units caps the blast radius at ~10%%;\n"
              "packing loses every container that shared the failed unit.\n");
  return spread.lost <= packed.lost ? 0 : 1;
}
