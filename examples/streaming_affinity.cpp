// Example: the §2.2 streaming scenario — a Storm topology computing top-k
// trending hashtags joined with user profiles served from Memcached.
//
// Deploys the pipeline twice: without constraints (YARN-style placement)
// and with Medea's intra- + inter-application affinity, then compares
// modeled Memcached lookup latency and end-to-end latency.

#include <cstdio>

#include "src/common/stats.h"
#include "src/perfmodel/perf_model.h"
#include "src/schedulers/ilp_scheduler.h"
#include "src/schedulers/yarn.h"
#include "src/workload/lra_templates.h"

using namespace medea;

namespace {

struct Outcome {
  double lookup_ms = 0.0;
  double e2e_ms = 0.0;
};

Outcome Deploy(bool with_constraints) {
  ClusterState cluster = ClusterBuilder()
                             .NumNodes(48)
                             .NumRacks(6)
                             .NumUpgradeDomains(6)
                             .NumServiceUnits(6)
                             .NodeCapacity(Resource(32 * 1024, 16))
                             .Build();
  ConstraintManager manager(cluster.groups_ptr());

  // Memcached is already running wherever the previous scheduler left it.
  auto memcached = MakeMemcachedInstance(ApplicationId(1), manager.tags());
  auto storm = MakeStormInstance(ApplicationId(2), manager.tags(), 5, with_constraints);
  if (with_constraints) {
    // Inter-application affinity: supervisors next to the profile cache.
    storm.app_constraints.push_back("{appID:2 & storm_sup, {mem, 1, inf}, node}");
  }

  SchedulerConfig config;
  config.node_pool_size = 48;
  const auto place = [&](LraSpec spec, LraScheduler& scheduler) {
    for (const auto& text : spec.app_constraints) {
      MEDEA_CHECK(
          manager.AddFromText(text, ConstraintOrigin::kApplication, spec.request.app).ok());
    }
    PlacementProblem problem;
    problem.lras = {spec.request};
    problem.state = &cluster;
    problem.manager = &manager;
    const auto plan = scheduler.Place(problem);
    MEDEA_CHECK(CommitPlan(problem, plan, cluster));
  };

  YarnScheduler yarn(config);
  MedeaIlpScheduler medea(config);
  place(std::move(memcached), yarn);
  place(std::move(storm), with_constraints ? static_cast<LraScheduler&>(medea)
                                           : static_cast<LraScheduler&>(yarn));

  // Model the pipeline's latencies from the achieved placement.
  PerfModel model(PerfModelConfig{}, 5);
  const NodeId server =
      cluster.FindContainer(cluster.ContainersOf(ApplicationId(1))[0])->node;
  Distribution lookups;
  for (ContainerId c : cluster.ContainersOf(ApplicationId(2))) {
    const NodeId client = cluster.FindContainer(c)->node;
    for (int i = 0; i < 1000; ++i) {
      lookups.Add(model.SampleLookupLatencyMs(cluster, client, server));
    }
  }
  const TagId sup = manager.tags().Find("storm_sup");
  const auto shape = ComputePlacementShape(cluster, ApplicationId(2), sup);
  Outcome outcome;
  outcome.lookup_ms = lookups.Mean();
  outcome.e2e_ms = 2.0 * lookups.Mean() + 40.0 + 430.0 * shape.cross_node_pair_share;
  return outcome;
}

}  // namespace

int main() {
  std::printf("=== Storm top-k + Memcached profile join (6k tweets/s) ===\n");
  const Outcome plain = Deploy(false);
  const Outcome constrained = Deploy(true);
  std::printf("%-22s %16s %16s\n", "placement", "lookup (ms)", "end-to-end (ms)");
  std::printf("%-22s %16.1f %16.1f\n", "no constraints", plain.lookup_ms, plain.e2e_ms);
  std::printf("%-22s %16.1f %16.1f\n", "Medea affinity", constrained.lookup_ms,
              constrained.e2e_ms);
  std::printf("speedup: lookup %.1fx, end-to-end %.1fx\n",
              plain.lookup_ms / constrained.lookup_ms, plain.e2e_ms / constrained.e2e_ms);
  return constrained.lookup_ms < plain.lookup_ms ? 0 : 1;
}
