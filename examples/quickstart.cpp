// Quickstart: the Medea public API in ~80 lines.
//
// Builds a small cluster, registers placement constraints with the
// constraint manager using the paper's textual syntax, schedules an LRA
// batch with the ILP scheduler, commits the plan, and verifies that no
// constraint is violated.
//
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "src/core/violation.h"
#include "src/schedulers/ilp_scheduler.h"
#include "src/workload/lra_templates.h"

using namespace medea;

int main() {
  // 1. A 24-node cluster: 4 racks, 4 upgrade domains, 16 GB / 8 cores each.
  ClusterState cluster = ClusterBuilder()
                             .NumNodes(24)
                             .NumRacks(4)
                             .NumUpgradeDomains(4)
                             .NumServiceUnits(4)
                             .NodeCapacity(Resource(16 * 1024, 8))
                             .Build();

  // 2. The constraint manager stores tags, node groups and constraints.
  ConstraintManager manager(cluster.groups_ptr());

  // 3. An application: six "web" containers plus two "cache" containers.
  const ApplicationId app(1);
  LraRequest request;
  request.app = app;
  const auto web_tags = manager.tags().InternAll({"web"});
  const auto cache_tags = manager.tags().InternAll({"cache"});
  for (int i = 0; i < 6; ++i) {
    ContainerRequest c{Resource(2048, 1), web_tags};
    c.tags.push_back(manager.tags().AppIdTag(app));
    request.containers.push_back(std::move(c));
  }
  for (int i = 0; i < 2; ++i) {
    ContainerRequest c{Resource(4096, 2), cache_tags};
    c.tags.push_back(manager.tags().AppIdTag(app));
    request.containers.push_back(std::move(c));
  }

  // 4. Constraints, in the paper's syntax (§4.2):
  //    - spread web containers: at most two per node;
  //    - every web container next to a cache container (node affinity);
  //    - cache containers in different upgrade domains (anti-affinity).
  for (const char* text : {
           "{web, {web, 0, 2}, node}",
           "{web, {cache, 1, inf}, node}",
           "{cache, {cache, 0, 0}, upgrade_domain}",
       }) {
    auto added = manager.AddFromText(text, ConstraintOrigin::kApplication, app);
    if (!added.ok()) {
      std::printf("bad constraint %s: %s\n", text, added.status().ToString().c_str());
      return 1;
    }
  }

  // 5. Schedule with Medea-ILP and commit through the single allocation
  //    path (two-scheduler design).
  SchedulerConfig config;
  config.node_pool_size = 24;
  MedeaIlpScheduler scheduler(config);
  PlacementProblem problem;
  problem.lras = {request};
  problem.state = &cluster;
  problem.manager = &manager;
  const PlacementPlan plan = scheduler.Place(problem);
  std::printf("planned %d/%zu LRAs in %.1f ms\n", plan.NumPlaced(), problem.lras.size(),
              plan.latency_ms);
  if (!CommitPlan(problem, plan, cluster)) {
    std::printf("commit conflict — resubmit the LRA\n");
    return 1;
  }

  // 6. Inspect the placement and verify the constraints.
  for (ContainerId c : cluster.ContainersOf(app)) {
    const ContainerInfo* info = cluster.FindContainer(c);
    std::printf("  container c%u (%s) -> node n%u\n", c.value,
                manager.tags().Name(info->tags[0]).c_str(), info->node.value);
  }
  const auto report = ConstraintEvaluator::EvaluateAll(cluster, manager);
  std::printf("constraint subjects: %d, violated: %d\n", report.total_subjects,
              report.violated_subjects);
  return report.violated_subjects == 0 ? 0 : 1;
}
