// Example: a shared production cluster serving HBase instances next to
// batch jobs, driven through the discrete-event simulator.
//
// Ten HBase instances (each with the §7.1 constraints: rack affinity for
// region servers, at most two region servers per node across instances,
// master/thrift collocation, master/secondary separation) arrive over five
// minutes while GridMix batch jobs churn through the task scheduler. The
// example prints the two-scheduler pipeline's metrics: placement latencies,
// violations, utilization and fragmentation.

#include <cstdio>

#include "src/schedulers/ilp_scheduler.h"
#include "src/sim/simulation.h"
#include "src/workload/gridmix.h"
#include "src/workload/lra_templates.h"

using namespace medea;

int main() {
  SimConfig config;
  config.num_nodes = 100;
  config.num_racks = 10;
  config.num_upgrade_domains = 10;
  config.num_service_units = 10;
  config.lra_interval_ms = 10000;  // the paper's 10 s scheduling interval

  SchedulerConfig scheduler_config;
  scheduler_config.node_pool_size = 64;
  scheduler_config.ilp_time_limit_seconds = 1.0;
  Simulation sim(config, std::make_unique<MedeaIlpScheduler>(scheduler_config));

  // Batch jobs: a GridMix stream submitted through the first 5 minutes.
  GridMixGenerator gridmix(GridMixConfig{}, /*seed=*/7);
  Rng arrivals(11);
  SimTimeMs t = 0;
  for (int job = 0; job < 60; ++job) {
    t += static_cast<SimTimeMs>(arrivals.NextExponential(1.0 / 5000.0));  // ~1 job / 5 s
    sim.SubmitTaskJobAt(t, gridmix.NextJob());
  }

  // Ten HBase instances, one every ~30 seconds.
  for (uint32_t i = 0; i < 10; ++i) {
    sim.SubmitLraAt(static_cast<SimTimeMs>(i) * 30000,
                    MakeHBaseInstance(ApplicationId(i + 1), sim.manager().tags(), 10));
  }

  sim.RunUntil(10 * 60 * 1000);  // ten simulated minutes

  const SimMetrics& metrics = sim.metrics();
  std::printf("=== HBase on a shared cluster (10 simulated minutes) ===\n");
  std::printf("LRAs placed:              %d (rejected %d, resubmissions %d)\n",
              metrics.lras_placed, metrics.lras_rejected, metrics.lra_resubmissions);
  std::printf("LRA scheduling cycles:    %d, mean solver latency %.1f ms\n", metrics.cycles,
              metrics.lra_cycle_latency_ms.Mean());
  if (!metrics.lra_placement_latency_ms.Empty()) {
    std::printf("LRA submission->commit:   median %.0f ms\n",
                metrics.lra_placement_latency_ms.Percentile(50));
  }
  std::printf("task allocations:         %zu, mean queueing %.0f ms\n",
              sim.task_scheduler().allocation_latency_ms().Count(),
              sim.task_scheduler().allocation_latency_ms().Mean());

  const auto report = sim.EvaluateViolations();
  std::printf("constraint subjects:      %d, violated %d (%.1f%%)\n", report.total_subjects,
              report.violated_subjects, 100.0 * report.ViolationFraction());
  std::printf("memory utilization:       %.0f%%\n", 100.0 * sim.MemoryUtilization());
  std::printf("fragmented nodes:         %.0f%%\n",
              100.0 * sim.state().FragmentedNodeFraction(Resource(2048, 1)));

  // Where did the region servers of instance 1 land?
  const TagId rs = sim.manager().tags().Find("hb_rs");
  std::printf("instance 1 region servers:");
  for (ContainerId c : sim.state().ContainersOf(ApplicationId(1))) {
    const ContainerInfo* info = sim.state().FindContainer(c);
    for (TagId tag : info->tags) {
      if (tag == rs) {
        std::printf(" n%u", info->node.value);
      }
    }
  }
  std::printf("\n");
  return report.violated_subjects == 0 ? 0 : 1;
}
