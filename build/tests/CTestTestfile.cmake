# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/constraint_test[1]_include.cmake")
include("/root/repo/build/tests/violation_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_lp_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/tasksched_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/scoring_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/ilp_test[1]_include.cmake")
include("/root/repo/build/tests/migration_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/presolve_test[1]_include.cmake")
include("/root/repo/build/tests/lp_reader_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/edge_case_test[1]_include.cmake")
