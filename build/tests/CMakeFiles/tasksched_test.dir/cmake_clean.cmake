file(REMOVE_RECURSE
  "CMakeFiles/tasksched_test.dir/tasksched_test.cc.o"
  "CMakeFiles/tasksched_test.dir/tasksched_test.cc.o.d"
  "tasksched_test"
  "tasksched_test.pdb"
  "tasksched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasksched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
