# Empty dependencies file for lp_reader_test.
# This may be replaced when dependencies are built.
