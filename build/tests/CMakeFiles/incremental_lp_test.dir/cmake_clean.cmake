file(REMOVE_RECURSE
  "CMakeFiles/incremental_lp_test.dir/incremental_lp_test.cc.o"
  "CMakeFiles/incremental_lp_test.dir/incremental_lp_test.cc.o.d"
  "incremental_lp_test"
  "incremental_lp_test.pdb"
  "incremental_lp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_lp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
