
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/incremental_lp_test.cc" "tests/CMakeFiles/incremental_lp_test.dir/incremental_lp_test.cc.o" "gcc" "tests/CMakeFiles/incremental_lp_test.dir/incremental_lp_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/medea_common.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/medea_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
