# Empty dependencies file for incremental_lp_test.
# This may be replaced when dependencies are built.
