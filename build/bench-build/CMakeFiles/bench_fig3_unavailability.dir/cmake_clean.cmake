file(REMOVE_RECURSE
  "../bench/bench_fig3_unavailability"
  "../bench/bench_fig3_unavailability.pdb"
  "CMakeFiles/bench_fig3_unavailability.dir/bench_fig3_unavailability.cc.o"
  "CMakeFiles/bench_fig3_unavailability.dir/bench_fig3_unavailability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_unavailability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
