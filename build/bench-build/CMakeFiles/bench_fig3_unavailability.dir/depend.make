# Empty dependencies file for bench_fig3_unavailability.
# This may be replaced when dependencies are built.
