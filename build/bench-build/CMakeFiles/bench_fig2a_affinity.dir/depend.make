# Empty dependencies file for bench_fig2a_affinity.
# This may be replaced when dependencies are built.
