file(REMOVE_RECURSE
  "../bench/bench_fig2a_affinity"
  "../bench/bench_fig2a_affinity.pdb"
  "CMakeFiles/bench_fig2a_affinity.dir/bench_fig2a_affinity.cc.o"
  "CMakeFiles/bench_fig2a_affinity.dir/bench_fig2a_affinity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
