# Empty dependencies file for bench_fig11c_task_latency.
# This may be replaced when dependencies are built.
