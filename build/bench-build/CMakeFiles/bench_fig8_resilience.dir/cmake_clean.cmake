file(REMOVE_RECURSE
  "../bench/bench_fig8_resilience"
  "../bench/bench_fig8_resilience.pdb"
  "CMakeFiles/bench_fig8_resilience.dir/bench_fig8_resilience.cc.o"
  "CMakeFiles/bench_fig8_resilience.dir/bench_fig8_resilience.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
