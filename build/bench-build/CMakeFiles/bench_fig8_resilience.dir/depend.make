# Empty dependencies file for bench_fig8_resilience.
# This may be replaced when dependencies are built.
