file(REMOVE_RECURSE
  "../bench/bench_fig7_app_performance"
  "../bench/bench_fig7_app_performance.pdb"
  "CMakeFiles/bench_fig7_app_performance.dir/bench_fig7_app_performance.cc.o"
  "CMakeFiles/bench_fig7_app_performance.dir/bench_fig7_app_performance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_app_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
