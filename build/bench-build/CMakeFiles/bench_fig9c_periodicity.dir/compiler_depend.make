# Empty compiler generated dependencies file for bench_fig9c_periodicity.
# This may be replaced when dependencies are built.
