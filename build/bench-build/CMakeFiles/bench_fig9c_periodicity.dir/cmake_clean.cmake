file(REMOVE_RECURSE
  "../bench/bench_fig9c_periodicity"
  "../bench/bench_fig9c_periodicity.pdb"
  "CMakeFiles/bench_fig9c_periodicity.dir/bench_fig9c_periodicity.cc.o"
  "CMakeFiles/bench_fig9c_periodicity.dir/bench_fig9c_periodicity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9c_periodicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
