# Empty compiler generated dependencies file for bench_fig9a_violations_lra.
# This may be replaced when dependencies are built.
