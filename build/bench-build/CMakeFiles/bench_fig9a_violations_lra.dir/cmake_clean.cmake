file(REMOVE_RECURSE
  "../bench/bench_fig9a_violations_lra"
  "../bench/bench_fig9a_violations_lra.pdb"
  "CMakeFiles/bench_fig9a_violations_lra.dir/bench_fig9a_violations_lra.cc.o"
  "CMakeFiles/bench_fig9a_violations_lra.dir/bench_fig9a_violations_lra.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9a_violations_lra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
