# Empty compiler generated dependencies file for bench_ablation_scoring.
# This may be replaced when dependencies are built.
