file(REMOVE_RECURSE
  "../bench/bench_ablation_candidates"
  "../bench/bench_ablation_candidates.pdb"
  "CMakeFiles/bench_ablation_candidates.dir/bench_ablation_candidates.cc.o"
  "CMakeFiles/bench_ablation_candidates.dir/bench_ablation_candidates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
