# Empty compiler generated dependencies file for bench_ablation_candidates.
# This may be replaced when dependencies are built.
