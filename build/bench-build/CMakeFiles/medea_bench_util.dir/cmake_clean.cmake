file(REMOVE_RECURSE
  "CMakeFiles/medea_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/medea_bench_util.dir/bench_util.cc.o.d"
  "libmedea_bench_util.a"
  "libmedea_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medea_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
