# Empty compiler generated dependencies file for medea_bench_util.
# This may be replaced when dependencies are built.
