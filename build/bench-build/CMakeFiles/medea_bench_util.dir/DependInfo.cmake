
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_util.cc" "bench-build/CMakeFiles/medea_bench_util.dir/bench_util.cc.o" "gcc" "bench-build/CMakeFiles/medea_bench_util.dir/bench_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/medea_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/medea_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/medea_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/schedulers/CMakeFiles/medea_schedulers.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/medea_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/medea_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tasksched/CMakeFiles/medea_tasksched.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/medea_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/medea_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
