file(REMOVE_RECURSE
  "libmedea_bench_util.a"
)
