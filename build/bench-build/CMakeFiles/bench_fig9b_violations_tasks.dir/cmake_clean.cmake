file(REMOVE_RECURSE
  "../bench/bench_fig9b_violations_tasks"
  "../bench/bench_fig9b_violations_tasks.pdb"
  "CMakeFiles/bench_fig9b_violations_tasks.dir/bench_fig9b_violations_tasks.cc.o"
  "CMakeFiles/bench_fig9b_violations_tasks.dir/bench_fig9b_violations_tasks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9b_violations_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
