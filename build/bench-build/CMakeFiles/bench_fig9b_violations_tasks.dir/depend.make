# Empty dependencies file for bench_fig9b_violations_tasks.
# This may be replaced when dependencies are built.
