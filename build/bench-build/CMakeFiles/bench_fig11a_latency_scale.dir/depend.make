# Empty dependencies file for bench_fig11a_latency_scale.
# This may be replaced when dependencies are built.
