file(REMOVE_RECURSE
  "../bench/bench_fig11a_latency_scale"
  "../bench/bench_fig11a_latency_scale.pdb"
  "CMakeFiles/bench_fig11a_latency_scale.dir/bench_fig11a_latency_scale.cc.o"
  "CMakeFiles/bench_fig11a_latency_scale.dir/bench_fig11a_latency_scale.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_latency_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
