file(REMOVE_RECURSE
  "../bench/bench_fig10_global_objectives"
  "../bench/bench_fig10_global_objectives.pdb"
  "CMakeFiles/bench_fig10_global_objectives.dir/bench_fig10_global_objectives.cc.o"
  "CMakeFiles/bench_fig10_global_objectives.dir/bench_fig10_global_objectives.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_global_objectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
