file(REMOVE_RECURSE
  "../bench/bench_fig2c_cardinality_hbase"
  "../bench/bench_fig2c_cardinality_hbase.pdb"
  "CMakeFiles/bench_fig2c_cardinality_hbase.dir/bench_fig2c_cardinality_hbase.cc.o"
  "CMakeFiles/bench_fig2c_cardinality_hbase.dir/bench_fig2c_cardinality_hbase.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2c_cardinality_hbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
