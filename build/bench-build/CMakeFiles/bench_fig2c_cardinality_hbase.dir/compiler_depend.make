# Empty compiler generated dependencies file for bench_fig2c_cardinality_hbase.
# This may be replaced when dependencies are built.
