# Empty dependencies file for bench_fig9d_complexity.
# This may be replaced when dependencies are built.
