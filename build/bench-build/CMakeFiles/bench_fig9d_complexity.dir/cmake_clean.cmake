file(REMOVE_RECURSE
  "../bench/bench_fig9d_complexity"
  "../bench/bench_fig9d_complexity.pdb"
  "CMakeFiles/bench_fig9d_complexity.dir/bench_fig9d_complexity.cc.o"
  "CMakeFiles/bench_fig9d_complexity.dir/bench_fig9d_complexity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9d_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
