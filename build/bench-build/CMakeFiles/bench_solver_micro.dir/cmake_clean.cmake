file(REMOVE_RECURSE
  "../bench/bench_solver_micro"
  "../bench/bench_solver_micro.pdb"
  "CMakeFiles/bench_solver_micro.dir/bench_solver_micro.cc.o"
  "CMakeFiles/bench_solver_micro.dir/bench_solver_micro.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solver_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
