file(REMOVE_RECURSE
  "../bench/bench_fig2b_antiaffinity"
  "../bench/bench_fig2b_antiaffinity.pdb"
  "CMakeFiles/bench_fig2b_antiaffinity.dir/bench_fig2b_antiaffinity.cc.o"
  "CMakeFiles/bench_fig2b_antiaffinity.dir/bench_fig2b_antiaffinity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_antiaffinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
