# Empty dependencies file for bench_fig2b_antiaffinity.
# This may be replaced when dependencies are built.
