file(REMOVE_RECURSE
  "../bench/bench_fig2d_cardinality_tf"
  "../bench/bench_fig2d_cardinality_tf.pdb"
  "CMakeFiles/bench_fig2d_cardinality_tf.dir/bench_fig2d_cardinality_tf.cc.o"
  "CMakeFiles/bench_fig2d_cardinality_tf.dir/bench_fig2d_cardinality_tf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2d_cardinality_tf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
