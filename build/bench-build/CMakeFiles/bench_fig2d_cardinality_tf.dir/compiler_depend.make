# Empty compiler generated dependencies file for bench_fig2d_cardinality_tf.
# This may be replaced when dependencies are built.
