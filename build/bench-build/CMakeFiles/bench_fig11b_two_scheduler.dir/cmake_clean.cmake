file(REMOVE_RECURSE
  "../bench/bench_fig11b_two_scheduler"
  "../bench/bench_fig11b_two_scheduler.pdb"
  "CMakeFiles/bench_fig11b_two_scheduler.dir/bench_fig11b_two_scheduler.cc.o"
  "CMakeFiles/bench_fig11b_two_scheduler.dir/bench_fig11b_two_scheduler.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11b_two_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
