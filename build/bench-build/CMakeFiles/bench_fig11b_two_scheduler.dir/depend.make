# Empty dependencies file for bench_fig11b_two_scheduler.
# This may be replaced when dependencies are built.
