file(REMOVE_RECURSE
  "../examples/resilience_failover"
  "../examples/resilience_failover.pdb"
  "CMakeFiles/resilience_failover.dir/resilience_failover.cpp.o"
  "CMakeFiles/resilience_failover.dir/resilience_failover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
