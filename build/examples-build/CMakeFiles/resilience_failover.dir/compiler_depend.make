# Empty compiler generated dependencies file for resilience_failover.
# This may be replaced when dependencies are built.
