# Empty compiler generated dependencies file for hbase_cluster.
# This may be replaced when dependencies are built.
