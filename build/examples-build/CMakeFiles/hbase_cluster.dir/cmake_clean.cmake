file(REMOVE_RECURSE
  "../examples/hbase_cluster"
  "../examples/hbase_cluster.pdb"
  "CMakeFiles/hbase_cluster.dir/hbase_cluster.cpp.o"
  "CMakeFiles/hbase_cluster.dir/hbase_cluster.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbase_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
