# Empty dependencies file for cluster_sim_cli.
# This may be replaced when dependencies are built.
