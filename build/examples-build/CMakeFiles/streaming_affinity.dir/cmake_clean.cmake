file(REMOVE_RECURSE
  "../examples/streaming_affinity"
  "../examples/streaming_affinity.pdb"
  "CMakeFiles/streaming_affinity.dir/streaming_affinity.cpp.o"
  "CMakeFiles/streaming_affinity.dir/streaming_affinity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
