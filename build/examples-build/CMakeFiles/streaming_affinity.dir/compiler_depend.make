# Empty compiler generated dependencies file for streaming_affinity.
# This may be replaced when dependencies are built.
