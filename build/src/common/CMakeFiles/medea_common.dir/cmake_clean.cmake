file(REMOVE_RECURSE
  "CMakeFiles/medea_common.dir/logging.cc.o"
  "CMakeFiles/medea_common.dir/logging.cc.o.d"
  "CMakeFiles/medea_common.dir/resource.cc.o"
  "CMakeFiles/medea_common.dir/resource.cc.o.d"
  "CMakeFiles/medea_common.dir/result.cc.o"
  "CMakeFiles/medea_common.dir/result.cc.o.d"
  "CMakeFiles/medea_common.dir/rng.cc.o"
  "CMakeFiles/medea_common.dir/rng.cc.o.d"
  "CMakeFiles/medea_common.dir/stats.cc.o"
  "CMakeFiles/medea_common.dir/stats.cc.o.d"
  "CMakeFiles/medea_common.dir/strings.cc.o"
  "CMakeFiles/medea_common.dir/strings.cc.o.d"
  "libmedea_common.a"
  "libmedea_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medea_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
