# Empty dependencies file for medea_common.
# This may be replaced when dependencies are built.
