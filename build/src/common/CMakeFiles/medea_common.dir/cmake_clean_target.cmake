file(REMOVE_RECURSE
  "libmedea_common.a"
)
