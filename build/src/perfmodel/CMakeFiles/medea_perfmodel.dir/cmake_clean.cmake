file(REMOVE_RECURSE
  "CMakeFiles/medea_perfmodel.dir/perf_model.cc.o"
  "CMakeFiles/medea_perfmodel.dir/perf_model.cc.o.d"
  "libmedea_perfmodel.a"
  "libmedea_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medea_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
