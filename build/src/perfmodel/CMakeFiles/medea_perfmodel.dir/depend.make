# Empty dependencies file for medea_perfmodel.
# This may be replaced when dependencies are built.
