file(REMOVE_RECURSE
  "libmedea_perfmodel.a"
)
