# Empty dependencies file for medea_workload.
# This may be replaced when dependencies are built.
