file(REMOVE_RECURSE
  "libmedea_workload.a"
)
