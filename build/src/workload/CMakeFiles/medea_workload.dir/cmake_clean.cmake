file(REMOVE_RECURSE
  "CMakeFiles/medea_workload.dir/google_trace.cc.o"
  "CMakeFiles/medea_workload.dir/google_trace.cc.o.d"
  "CMakeFiles/medea_workload.dir/gridmix.cc.o"
  "CMakeFiles/medea_workload.dir/gridmix.cc.o.d"
  "CMakeFiles/medea_workload.dir/lra_templates.cc.o"
  "CMakeFiles/medea_workload.dir/lra_templates.cc.o.d"
  "libmedea_workload.a"
  "libmedea_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medea_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
