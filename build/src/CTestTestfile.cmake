# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("cluster")
subdirs("core")
subdirs("solver")
subdirs("tasksched")
subdirs("schedulers")
subdirs("workload")
subdirs("perfmodel")
subdirs("sim")
