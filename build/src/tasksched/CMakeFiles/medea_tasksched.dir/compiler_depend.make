# Empty compiler generated dependencies file for medea_tasksched.
# This may be replaced when dependencies are built.
