file(REMOVE_RECURSE
  "CMakeFiles/medea_tasksched.dir/task_scheduler.cc.o"
  "CMakeFiles/medea_tasksched.dir/task_scheduler.cc.o.d"
  "libmedea_tasksched.a"
  "libmedea_tasksched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medea_tasksched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
