file(REMOVE_RECURSE
  "libmedea_tasksched.a"
)
