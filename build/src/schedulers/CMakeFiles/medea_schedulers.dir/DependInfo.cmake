
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedulers/candidates.cc" "src/schedulers/CMakeFiles/medea_schedulers.dir/candidates.cc.o" "gcc" "src/schedulers/CMakeFiles/medea_schedulers.dir/candidates.cc.o.d"
  "/root/repo/src/schedulers/greedy.cc" "src/schedulers/CMakeFiles/medea_schedulers.dir/greedy.cc.o" "gcc" "src/schedulers/CMakeFiles/medea_schedulers.dir/greedy.cc.o.d"
  "/root/repo/src/schedulers/ilp_scheduler.cc" "src/schedulers/CMakeFiles/medea_schedulers.dir/ilp_scheduler.cc.o" "gcc" "src/schedulers/CMakeFiles/medea_schedulers.dir/ilp_scheduler.cc.o.d"
  "/root/repo/src/schedulers/jkube.cc" "src/schedulers/CMakeFiles/medea_schedulers.dir/jkube.cc.o" "gcc" "src/schedulers/CMakeFiles/medea_schedulers.dir/jkube.cc.o.d"
  "/root/repo/src/schedulers/migration.cc" "src/schedulers/CMakeFiles/medea_schedulers.dir/migration.cc.o" "gcc" "src/schedulers/CMakeFiles/medea_schedulers.dir/migration.cc.o.d"
  "/root/repo/src/schedulers/placement.cc" "src/schedulers/CMakeFiles/medea_schedulers.dir/placement.cc.o" "gcc" "src/schedulers/CMakeFiles/medea_schedulers.dir/placement.cc.o.d"
  "/root/repo/src/schedulers/scoring.cc" "src/schedulers/CMakeFiles/medea_schedulers.dir/scoring.cc.o" "gcc" "src/schedulers/CMakeFiles/medea_schedulers.dir/scoring.cc.o.d"
  "/root/repo/src/schedulers/yarn.cc" "src/schedulers/CMakeFiles/medea_schedulers.dir/yarn.cc.o" "gcc" "src/schedulers/CMakeFiles/medea_schedulers.dir/yarn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/medea_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/medea_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/medea_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/medea_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
