file(REMOVE_RECURSE
  "libmedea_schedulers.a"
)
