# Empty dependencies file for medea_schedulers.
# This may be replaced when dependencies are built.
