file(REMOVE_RECURSE
  "CMakeFiles/medea_schedulers.dir/candidates.cc.o"
  "CMakeFiles/medea_schedulers.dir/candidates.cc.o.d"
  "CMakeFiles/medea_schedulers.dir/greedy.cc.o"
  "CMakeFiles/medea_schedulers.dir/greedy.cc.o.d"
  "CMakeFiles/medea_schedulers.dir/ilp_scheduler.cc.o"
  "CMakeFiles/medea_schedulers.dir/ilp_scheduler.cc.o.d"
  "CMakeFiles/medea_schedulers.dir/jkube.cc.o"
  "CMakeFiles/medea_schedulers.dir/jkube.cc.o.d"
  "CMakeFiles/medea_schedulers.dir/migration.cc.o"
  "CMakeFiles/medea_schedulers.dir/migration.cc.o.d"
  "CMakeFiles/medea_schedulers.dir/placement.cc.o"
  "CMakeFiles/medea_schedulers.dir/placement.cc.o.d"
  "CMakeFiles/medea_schedulers.dir/scoring.cc.o"
  "CMakeFiles/medea_schedulers.dir/scoring.cc.o.d"
  "CMakeFiles/medea_schedulers.dir/yarn.cc.o"
  "CMakeFiles/medea_schedulers.dir/yarn.cc.o.d"
  "libmedea_schedulers.a"
  "libmedea_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medea_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
