
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/constraint.cc" "src/core/CMakeFiles/medea_core.dir/constraint.cc.o" "gcc" "src/core/CMakeFiles/medea_core.dir/constraint.cc.o.d"
  "/root/repo/src/core/constraint_manager.cc" "src/core/CMakeFiles/medea_core.dir/constraint_manager.cc.o" "gcc" "src/core/CMakeFiles/medea_core.dir/constraint_manager.cc.o.d"
  "/root/repo/src/core/constraint_parser.cc" "src/core/CMakeFiles/medea_core.dir/constraint_parser.cc.o" "gcc" "src/core/CMakeFiles/medea_core.dir/constraint_parser.cc.o.d"
  "/root/repo/src/core/tags.cc" "src/core/CMakeFiles/medea_core.dir/tags.cc.o" "gcc" "src/core/CMakeFiles/medea_core.dir/tags.cc.o.d"
  "/root/repo/src/core/violation.cc" "src/core/CMakeFiles/medea_core.dir/violation.cc.o" "gcc" "src/core/CMakeFiles/medea_core.dir/violation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/medea_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/medea_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
