# Empty compiler generated dependencies file for medea_core.
# This may be replaced when dependencies are built.
