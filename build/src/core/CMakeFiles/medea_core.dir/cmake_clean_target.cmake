file(REMOVE_RECURSE
  "libmedea_core.a"
)
