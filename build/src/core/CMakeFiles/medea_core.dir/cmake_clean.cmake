file(REMOVE_RECURSE
  "CMakeFiles/medea_core.dir/constraint.cc.o"
  "CMakeFiles/medea_core.dir/constraint.cc.o.d"
  "CMakeFiles/medea_core.dir/constraint_manager.cc.o"
  "CMakeFiles/medea_core.dir/constraint_manager.cc.o.d"
  "CMakeFiles/medea_core.dir/constraint_parser.cc.o"
  "CMakeFiles/medea_core.dir/constraint_parser.cc.o.d"
  "CMakeFiles/medea_core.dir/tags.cc.o"
  "CMakeFiles/medea_core.dir/tags.cc.o.d"
  "CMakeFiles/medea_core.dir/violation.cc.o"
  "CMakeFiles/medea_core.dir/violation.cc.o.d"
  "libmedea_core.a"
  "libmedea_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medea_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
