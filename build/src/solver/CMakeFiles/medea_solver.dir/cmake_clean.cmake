file(REMOVE_RECURSE
  "CMakeFiles/medea_solver.dir/incremental_lp.cc.o"
  "CMakeFiles/medea_solver.dir/incremental_lp.cc.o.d"
  "CMakeFiles/medea_solver.dir/lp_reader.cc.o"
  "CMakeFiles/medea_solver.dir/lp_reader.cc.o.d"
  "CMakeFiles/medea_solver.dir/lp_writer.cc.o"
  "CMakeFiles/medea_solver.dir/lp_writer.cc.o.d"
  "CMakeFiles/medea_solver.dir/mip.cc.o"
  "CMakeFiles/medea_solver.dir/mip.cc.o.d"
  "CMakeFiles/medea_solver.dir/model.cc.o"
  "CMakeFiles/medea_solver.dir/model.cc.o.d"
  "CMakeFiles/medea_solver.dir/presolve.cc.o"
  "CMakeFiles/medea_solver.dir/presolve.cc.o.d"
  "CMakeFiles/medea_solver.dir/simplex.cc.o"
  "CMakeFiles/medea_solver.dir/simplex.cc.o.d"
  "libmedea_solver.a"
  "libmedea_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medea_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
