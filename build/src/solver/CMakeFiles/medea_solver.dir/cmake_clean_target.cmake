file(REMOVE_RECURSE
  "libmedea_solver.a"
)
