# Empty compiler generated dependencies file for medea_solver.
# This may be replaced when dependencies are built.
