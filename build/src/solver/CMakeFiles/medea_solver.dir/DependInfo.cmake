
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/incremental_lp.cc" "src/solver/CMakeFiles/medea_solver.dir/incremental_lp.cc.o" "gcc" "src/solver/CMakeFiles/medea_solver.dir/incremental_lp.cc.o.d"
  "/root/repo/src/solver/lp_reader.cc" "src/solver/CMakeFiles/medea_solver.dir/lp_reader.cc.o" "gcc" "src/solver/CMakeFiles/medea_solver.dir/lp_reader.cc.o.d"
  "/root/repo/src/solver/lp_writer.cc" "src/solver/CMakeFiles/medea_solver.dir/lp_writer.cc.o" "gcc" "src/solver/CMakeFiles/medea_solver.dir/lp_writer.cc.o.d"
  "/root/repo/src/solver/mip.cc" "src/solver/CMakeFiles/medea_solver.dir/mip.cc.o" "gcc" "src/solver/CMakeFiles/medea_solver.dir/mip.cc.o.d"
  "/root/repo/src/solver/model.cc" "src/solver/CMakeFiles/medea_solver.dir/model.cc.o" "gcc" "src/solver/CMakeFiles/medea_solver.dir/model.cc.o.d"
  "/root/repo/src/solver/presolve.cc" "src/solver/CMakeFiles/medea_solver.dir/presolve.cc.o" "gcc" "src/solver/CMakeFiles/medea_solver.dir/presolve.cc.o.d"
  "/root/repo/src/solver/simplex.cc" "src/solver/CMakeFiles/medea_solver.dir/simplex.cc.o" "gcc" "src/solver/CMakeFiles/medea_solver.dir/simplex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/medea_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
