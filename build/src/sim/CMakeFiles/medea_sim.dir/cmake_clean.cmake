file(REMOVE_RECURSE
  "CMakeFiles/medea_sim.dir/scenario.cc.o"
  "CMakeFiles/medea_sim.dir/scenario.cc.o.d"
  "CMakeFiles/medea_sim.dir/simulation.cc.o"
  "CMakeFiles/medea_sim.dir/simulation.cc.o.d"
  "CMakeFiles/medea_sim.dir/unavailability.cc.o"
  "CMakeFiles/medea_sim.dir/unavailability.cc.o.d"
  "libmedea_sim.a"
  "libmedea_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medea_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
