# Empty dependencies file for medea_sim.
# This may be replaced when dependencies are built.
