file(REMOVE_RECURSE
  "libmedea_sim.a"
)
