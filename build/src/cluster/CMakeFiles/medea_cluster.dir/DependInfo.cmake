
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster_state.cc" "src/cluster/CMakeFiles/medea_cluster.dir/cluster_state.cc.o" "gcc" "src/cluster/CMakeFiles/medea_cluster.dir/cluster_state.cc.o.d"
  "/root/repo/src/cluster/node.cc" "src/cluster/CMakeFiles/medea_cluster.dir/node.cc.o" "gcc" "src/cluster/CMakeFiles/medea_cluster.dir/node.cc.o.d"
  "/root/repo/src/cluster/node_group.cc" "src/cluster/CMakeFiles/medea_cluster.dir/node_group.cc.o" "gcc" "src/cluster/CMakeFiles/medea_cluster.dir/node_group.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/medea_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
