file(REMOVE_RECURSE
  "libmedea_cluster.a"
)
