# Empty dependencies file for medea_cluster.
# This may be replaced when dependencies are built.
