file(REMOVE_RECURSE
  "CMakeFiles/medea_cluster.dir/cluster_state.cc.o"
  "CMakeFiles/medea_cluster.dir/cluster_state.cc.o.d"
  "CMakeFiles/medea_cluster.dir/node.cc.o"
  "CMakeFiles/medea_cluster.dir/node.cc.o.d"
  "CMakeFiles/medea_cluster.dir/node_group.cc.o"
  "CMakeFiles/medea_cluster.dir/node_group.cc.o.d"
  "libmedea_cluster.a"
  "libmedea_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medea_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
